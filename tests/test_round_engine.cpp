// Shard-determinism test layer for the sharded round engine
// (DESIGN.md §15). Pins, in order of increasing integration:
//   * ShardMap is an exact contiguous partition (near-equal slices,
//     shard_of inverts begin/end, shard counts clamp to the cohort);
//   * WaveScheduler consumes strictly in ascending order, produces at
//     most `window` slots ahead, completes every slot exactly once, and
//     propagates exceptions — at any pool size, including the nested
//     serial fallback;
//   * the shard-chained fold (accumulate shard slices in ascending
//     shard order through ONE strategy accumulator) is bit-identical to
//     one-shot aggregate() — weights AND γ vector — for all five
//     strategies across shard counts {1,2,3,7,16} and cohorts
//     {1,2,31,257}, including cohorts smaller than the shard count and
//     the robust strategies' buffered fallback;
//   * full Server rounds at shards ∈ {1,2,3,7,16} produce byte-identical
//     weights, timing-free CSV, and RoundRecord fields — clean runs for
//     every strategy, plus a faulty run (drops, duplicates, stragglers,
//     quorum, deadline) where dropout/straggler/upload-failure ledgers
//     must also shard-partition correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/fl/round_engine.hpp"
#include "src/fl/simulation.hpp"
#include "src/fl/strategy.hpp"
#include "src/fl/wave_scheduler.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/threadpool.hpp"
#include "property.hpp"

namespace fedcav {
namespace {

const char* kStrategies[] = {"fedavg", "fedprox", "fedcav", "fedcav-noclip",
                             "median"};
const std::size_t kShardCounts[] = {1, 2, 3, 7, 16};
const std::size_t kCohorts[] = {1, 2, 31, 257};

bool bits_equal(const nn::Weights& a, const nn::Weights& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ------------------------------------------------------------ ShardMap

TEST(ShardMap, ExactContiguousPartition) {
  FEDCAV_PROPERTY("shard map partitions exactly", 2000, [](Rng& rng) {
    const auto slots = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{400}));
    const auto shards =
        1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{40}));
    const fl::ShardMap map(slots, shards);

    // Clamped to [1, max(1, slots)].
    EXPECT_GE(map.shards(), std::size_t{1});
    EXPECT_LE(map.shards(), std::max<std::size_t>(slots, 1));
    if (shards <= std::max<std::size_t>(slots, 1)) {
      EXPECT_EQ(map.shards(), shards);
    }

    // Contiguous cover with near-equal slices (sizes differ by <= 1 and
    // never decrease... larger slices come first).
    std::size_t cursor = 0;
    const std::size_t base = slots / map.shards();
    for (std::size_t s = 0; s < map.shards(); ++s) {
      EXPECT_EQ(map.begin(s), cursor);
      EXPECT_GE(map.size(s), base);
      EXPECT_LE(map.size(s), base + 1);
      if (s > 0) {
        EXPECT_LE(map.size(s), map.size(s - 1));
      }
      cursor = map.end(s);
    }
    EXPECT_EQ(cursor, slots);

    // shard_of inverts the ownership ranges.
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const std::size_t s = map.shard_of(slot);
      EXPECT_GE(slot, map.begin(s));
      EXPECT_LT(slot, map.end(s));
    }
  });
}

// ------------------------------------------------------- WaveScheduler

TEST(WaveScheduler, AscendingConsumeBoundedProduceEverySlotOnce) {
  // Shared pools: spawning threads per property case would dominate the
  // test. The scheduler itself is what varies.
  ThreadPool pool1(1), pool4(4);
  FEDCAV_PROPERTY("pipeline order + window", 300, [&](Rng& rng) {
    ThreadPool& pool = rng.bernoulli(0.5) ? pool4 : pool1;
    const auto first = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}));
    const std::size_t n =
        first + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{40}));
    const auto window =
        1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{8}));

    std::vector<std::atomic<int>> produced(n > 0 ? n + window + 1 : 1);
    for (auto& p : produced) p.store(0);
    std::vector<std::size_t> consume_order;  // serial side: no lock needed
    fl::WaveScheduler::run(
        pool, first, n, window,
        [&](std::size_t i) { produced[i].fetch_add(1); },
        [&](std::size_t i) {
          // Ring exclusivity: produce(i + window) must not have started
          // before consume(i) finishes.
          if (i + window < produced.size()) {
            EXPECT_EQ(produced[i + window].load(), 0)
                << "produce overran the window at slot " << i;
          }
          EXPECT_EQ(produced[i].load(), 1);
          consume_order.push_back(i);
        });

    ASSERT_EQ(consume_order.size(), n - std::min(first, n));
    for (std::size_t k = 0; k < consume_order.size(); ++k) {
      EXPECT_EQ(consume_order[k], first + k) << "consume out of order";
    }
    for (std::size_t i = first; i < n; ++i) EXPECT_EQ(produced[i].load(), 1);
  });
}

TEST(WaveScheduler, NestedCallDegradesToSerialLoop) {
  ThreadPool pool(2);
  std::vector<std::size_t> sequence;
  pool.parallel_for(1, [&](std::size_t) {
    // Called from a pool worker: the pipeline must run inline, strictly
    // interleaved produce(i); consume(i).
    fl::WaveScheduler::run(
        pool, 0, 5, 3, [&](std::size_t i) { sequence.push_back(100 + i); },
        [&](std::size_t i) { sequence.push_back(200 + i); });
  });
  const std::vector<std::size_t> want = {100, 200, 101, 201, 102,
                                         202, 103, 203, 104, 204};
  EXPECT_EQ(sequence, want);
}

TEST(WaveScheduler, ProduceExceptionPropagatesAndStopsPipeline) {
  ThreadPool pool(4);
  std::atomic<std::size_t> consumed{0};
  EXPECT_THROW(
      fl::WaveScheduler::run(
          pool, 0, 100, 4,
          [&](std::size_t i) {
            if (i == 17) throw std::runtime_error("produce boom");
          },
          [&](std::size_t) { consumed.fetch_add(1); }),
      std::runtime_error);
  EXPECT_LT(consumed.load(), std::size_t{100});
}

TEST(WaveScheduler, ConsumeExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(fl::WaveScheduler::run(
                   pool, 0, 50, 4, [&](std::size_t) {},
                   [&](std::size_t i) {
                     if (i == 9) throw std::runtime_error("consume boom");
                   }),
               std::runtime_error);
}

// --------------------------------------- shard-chained fold == one-shot

TEST(RoundEngineProperty, ShardChainedFoldMatchesOneShotBitwise) {
  // The §15 reduction: ONE strategy accumulator, folded through the
  // shards in ascending shard order (each shard's slice in ascending
  // slot order). Exhaustive grid over strategies × shard counts ×
  // cohorts, randomized update contents per case.
  FEDCAV_PROPERTY("shard chain == one-shot", 8, [](Rng& rng) {
    const std::size_t dim =
        1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{16}));
    std::vector<float> global(dim);
    for (auto& v : global) v = rng.uniform_f(-1.0f, 1.0f);

    for (const char* name : kStrategies) {
      for (const std::size_t cohort : kCohorts) {
        std::vector<fl::ClientUpdate> updates;
        updates.reserve(cohort);
        for (std::size_t i = 0; i < cohort; ++i) {
          fl::ClientUpdate u;
          u.client_id = i;
          u.num_samples =
              1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{200}));
          u.inference_loss = rng.uniform(0.01, 10.0);
          u.weights.resize(dim);
          for (auto& w : u.weights) w = rng.uniform_f(-2.0f, 2.0f);
          updates.push_back(std::move(u));
        }
        std::vector<fl::ClientUpdate> meta = updates;
        for (auto& m : meta) m.weights.clear();

        const auto reference = fl::make_strategy(name);
        const nn::Weights direct = reference->aggregate(global, updates);
        const std::vector<double> gamma_direct =
            reference->aggregation_weights(updates);

        for (const std::size_t shards : kShardCounts) {
          const fl::ShardMap map(cohort, shards);
          const auto chained = fl::make_strategy(name);
          chained->begin_aggregation(global, meta);
          for (std::size_t s = 0; s < map.shards(); ++s) {
            for (std::size_t slot = map.begin(s); slot < map.end(s); ++slot) {
              chained->accumulate(updates[slot]);
            }
          }
          const nn::Weights sharded = chained->finish_aggregation();
          EXPECT_TRUE(bits_equal(direct, sharded))
              << name << " cohort=" << cohort << " shards=" << shards;
          // γ is a pure function of the metadata scalars: identical
          // doubles, not just close ones.
          EXPECT_EQ(gamma_direct, chained->aggregation_weights(updates))
              << name << " cohort=" << cohort << " shards=" << shards;
        }
      }
    }
  });
}

// --------------------------------------------- full-server bit-identity

/// Every deterministic RoundRecord field, hex-exact floats included.
std::string record_summary(const metrics::RoundRecord& rec) {
  std::ostringstream out;
  out << rec.round << '|' << rec.sampled << '|' << rec.participants << '|'
      << rec.dropouts << '|' << rec.straggler_drops << '|'
      << rec.upload_failures << '|' << rec.retries << '|' << rec.crc_failures
      << '|' << rec.stale_discards << '|' << rec.deadline_misses << '|'
      << rec.skipped << '|' << rec.attacked << '|' << rec.detection_fired
      << '|' << rec.reversed << '|' << rec.bytes_up << '|' << rec.bytes_down
      << '|';
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%a|%a|%a|%a", rec.test_accuracy,
                rec.test_loss, rec.mean_inference_loss,
                rec.max_inference_loss);
  out << buf;
  return out.str();
}

fl::SimulationConfig small_config(const std::string& strategy) {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = strategy;
  config.train_samples_per_class = 8;
  config.test_samples_per_class = 4;
  config.partition.num_clients = 10;
  config.seed = 2021;
  config.server.sample_ratio = 0.8;
  config.server.local.epochs = 1;
  config.server.local.batch_size = 8;
  return config;
}

struct ServerRun {
  std::string csv;  // timing-free: the deterministic comparison target
  nn::Weights weights;
  std::vector<std::string> records;
};

ServerRun run_with_shards(fl::SimulationConfig config, std::size_t shards,
                          std::size_t rounds) {
  config.server.shards = shards;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(rounds);
  ServerRun out;
  std::ostringstream csv;
  sim.server->history().write_csv(csv, /*include_timings=*/false);
  out.csv = csv.str();
  out.weights = sim.server->global_weights();
  for (const auto& rec : sim.server->history().records()) {
    out.records.push_back(record_summary(rec));
  }
  return out;
}

void expect_identical(const ServerRun& base, const ServerRun& got,
                      const std::string& label) {
  EXPECT_TRUE(bits_equal(base.weights, got.weights))
      << label << ": final weights diverged";
  EXPECT_EQ(base.csv, got.csv) << label << ": CSV diverged";
  ASSERT_EQ(base.records.size(), got.records.size()) << label;
  for (std::size_t i = 0; i < base.records.size(); ++i) {
    EXPECT_EQ(base.records[i], got.records[i])
        << label << ": round " << i + 1 << " record diverged";
  }
}

TEST(RoundEngineServer, EveryStrategyBitIdenticalAcrossShardCounts) {
  set_log_level(LogLevel::kError);
  for (const char* strategy : kStrategies) {
    const ServerRun base = run_with_shards(small_config(strategy), 1, 2);
    for (const std::size_t shards : kShardCounts) {
      if (shards == 1) continue;
      const ServerRun got = run_with_shards(small_config(strategy), shards, 2);
      expect_identical(base, got,
                       std::string(strategy) + " shards=" +
                           std::to_string(shards));
    }
  }
}

TEST(RoundEngineServer, FaultyRunBitIdenticalAcrossShardCounts) {
  // Dropouts, stragglers, upload failures, retries, and a quorum skip
  // all book into per-shard ledgers; the run must still be invisible to
  // the shard count (and the per-shard accounting invariant inside
  // run_round must hold, or this throws).
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config("fedcav");
  config.server.network.faults.seed = 77;
  config.server.network.faults.drop_prob = 0.25;
  config.server.network.faults.duplicate_prob = 0.15;
  config.server.network.faults.corrupt_prob = 0.1;
  config.server.straggler_drop_prob = 0.3;
  config.server.min_aggregate_clients = 2;
  config.server.max_retries = 2;
  config.server.retry_backoff_s = 0.01;
  config.server.uplink_deadline_s = 5.0;

  const ServerRun base = run_with_shards(config, 1, 3);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{16}}) {
    const ServerRun got = run_with_shards(config, shards, 3);
    expect_identical(base, got, "faulty shards=" + std::to_string(shards));
  }
}

TEST(RoundEngineServer, DerivedSeedsBitIdenticalAcrossShardCounts) {
  // Derived-seed mode (DESIGN.md §16) with sampling + stragglers — the
  // configs the per-round derivation exists for — must stay invisible
  // to the shard count like every other config.
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config("fedcav");
  config.server.rng_mode = RngMode::kDerived;
  config.server.sample_ratio = 0.5;
  config.server.straggler_drop_prob = 0.25;

  const ServerRun base = run_with_shards(config, 1, 3);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    const ServerRun got = run_with_shards(config, shards, 3);
    expect_identical(base, got, "derived shards=" + std::to_string(shards));
  }
}

TEST(RoundEngineServer, DerivedSeedsIgnoreClientStreamHistory) {
  // The divergence bug in miniature: scramble every client's long-lived
  // RNG stream before the run. In derived mode each participation
  // reseeds from (seed, round, id, stream), so the scramble must be
  // invisible; in legacy-stream mode the same scramble changes the run
  // (which is why remote/in-process legacy runs diverged under
  // sampling/stragglers).
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config("fedcav");
  config.server.rng_mode = RngMode::kDerived;
  config.server.sample_ratio = 0.5;
  config.server.straggler_drop_prob = 0.25;

  const ServerRun clean = run_with_shards(config, 1, 3);
  fl::Simulation dirty = fl::build_simulation(config);
  for (std::size_t c = 0; c < dirty.server->num_clients(); ++c) {
    dirty.server->client_at(c).reseed_for_round(0xbadc0ffeeULL + c, 777);
  }
  dirty.server->run(3);
  std::ostringstream dirty_csv;
  dirty.server->history().write_csv(dirty_csv, /*include_timings=*/false);
  EXPECT_EQ(dirty_csv.str(), clean.csv)
      << "derived-mode history depends on pre-run client RNG state";
  EXPECT_TRUE(bits_equal(dirty.server->global_weights(), clean.weights))
      << "derived-mode weights depend on pre-run client RNG state";
}

TEST(RoundEngineServer, AutoShardsFollowsProcessDefault) {
  // ServerConfig::shards == 0 defers to the process default — the knob
  // the FEDCAV_TEST_SHARDS Environment hook raises for suite replays.
  set_log_level(LogLevel::kError);
  const ServerRun base = run_with_shards(small_config("fedcav"), 1, 1);
  fl::set_default_round_shards(4);
  const ServerRun auto_run = run_with_shards(small_config("fedcav"), 0, 1);
  fl::set_default_round_shards(0);
  expect_identical(base, auto_run, "auto shards=4");
}

}  // namespace
}  // namespace fedcav
