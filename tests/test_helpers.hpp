// Shared helpers for the fedcav test suite.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/nn/layer.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::testing {

/// Central-difference numerical gradient of `f` w.r.t. x[i].
template <typename F>
double numerical_grad(F&& f, std::vector<float>& x, std::size_t i, double eps = 1e-3) {
  const float saved = x[i];
  x[i] = saved + static_cast<float>(eps);
  const double up = f();
  x[i] = saved - static_cast<float>(eps);
  const double down = f();
  x[i] = saved;
  return (up - down) / (2.0 * eps);
}

/// Relative error with an absolute floor (gradients near zero).
inline double rel_error(double analytic, double numeric) {
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  return std::abs(analytic - numeric) / denom;
}

/// Gradient-check a layer through a scalar loss L = Σ out² / 2 so
/// dL/dout = out. Checks input gradients and all parameter gradients.
/// Returns the max relative error observed.
double gradient_check_layer(nn::Layer& layer, const Tensor& input, double eps = 1e-3);

/// Gradient-check a loss function against integer labels.
double gradient_check_loss(nn::Loss& loss, const Tensor& logits,
                           const std::vector<std::size_t>& labels, double eps = 1e-3);

/// Deliberately naive triple-loop matmul oracle: C = op(A)·op(B) with
/// float64 accumulation. op(A) is m×k, op(B) is k×n. No tiling, no
/// packing, no reordering — this is the trusted reference the GEMM
/// kernel cross-checks run against (tests/test_gemm.cpp).
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b);

}  // namespace fedcav::testing
