// Kernel cross-check suite: every matmul* entry and the underlying
// packed register-tiled gemm() are compared against the deliberately
// naive triple-loop oracle in test_helpers over adversarial shapes —
// dims straddling the 4×16 register tile (63/64/65), degenerate rank-1
// contractions, and strongly non-square panels.
//
// Tolerances are derived from the documented accumulation policy
// (src/tensor/gemm.hpp): products are accumulated in float32 in k-order,
// so each output element carries at most ~k·eps relative error against
// the float64 oracle, scaled by Σ|a_ik·b_kj| (the classic summation
// bound). We allow a 4× slack on that bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"
#include "tests/test_helpers.hpp"

namespace fedcav::ops {
namespace {

using fedcav::testing::naive_matmul;

constexpr std::size_t kDims[] = {1, 3, 63, 64, 65, 130};
constexpr double kEps = std::numeric_limits<float>::epsilon();

Tensor abs_tensor(const Tensor& t) {
  Tensor out = t;
  for (std::size_t i = 0; i < out.numel(); ++i) out[i] = std::fabs(out[i]);
  return out;
}

/// Assert |got - ref| element-wise within the fp32 k-order summation
/// bound: 4 · k · eps · (|A|·|B|)_ij, floored at 4·eps for products that
/// cancel to ~0.
void expect_within_policy(const Tensor& got, const Tensor& ref,
                          const Tensor& bound_matrix, std::size_t k,
                          const char* what) {
  ASSERT_EQ(got.shape(), ref.shape()) << what;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    const double tol =
        4.0 * kEps * (static_cast<double>(k) * static_cast<double>(bound_matrix[i]) + 1.0);
    ASSERT_NEAR(got[i], ref[i], tol) << what << " at flat index " << i;
  }
}

struct Operands {
  Tensor a, b;       // stored per the variant's layout
  Tensor ref;        // float64-accumulated oracle
  Tensor bound;      // |op(A)|·|op(B)| for the error bound
};

Operands make_operands(std::size_t m, std::size_t n, std::size_t k,
                       bool trans_a, bool trans_b, std::uint64_t seed) {
  Rng rng(seed);
  Operands o;
  o.a = Tensor::uniform(trans_a ? Shape::of(k, m) : Shape::of(m, k), rng,
                        -1.0f, 1.0f);
  o.b = Tensor::uniform(trans_b ? Shape::of(n, k) : Shape::of(k, n), rng,
                        -1.0f, 1.0f);
  o.ref = naive_matmul(o.a, o.b, trans_a, trans_b);
  o.bound = naive_matmul(abs_tensor(o.a), abs_tensor(o.b), trans_a, trans_b);
  return o;
}

TEST(GemmCrossCheck, MatmulMatchesNaiveOverAdversarialShapes) {
  std::uint64_t seed = 1;
  for (std::size_t m : kDims) {
    for (std::size_t n : kDims) {
      for (std::size_t k : kDims) {
        const Operands o = make_operands(m, n, k, false, false, seed++);
        Tensor c(Shape::of(m, n));
        matmul(o.a, o.b, c);
        expect_within_policy(c, o.ref, o.bound, k, "matmul");
      }
    }
  }
}

TEST(GemmCrossCheck, MatmulTransposedAMatchesNaive) {
  std::uint64_t seed = 1000;
  for (std::size_t m : kDims) {
    for (std::size_t n : kDims) {
      for (std::size_t k : kDims) {
        const Operands o = make_operands(m, n, k, true, false, seed++);
        Tensor c(Shape::of(m, n));
        matmul_transposed_a(o.a, o.b, c);
        expect_within_policy(c, o.ref, o.bound, k, "matmul_transposed_a");
      }
    }
  }
}

TEST(GemmCrossCheck, MatmulTransposedBMatchesNaive) {
  std::uint64_t seed = 2000;
  for (std::size_t m : kDims) {
    for (std::size_t n : kDims) {
      for (std::size_t k : kDims) {
        const Operands o = make_operands(m, n, k, false, true, seed++);
        Tensor c(Shape::of(m, n));
        matmul_transposed_b(o.a, o.b, c);
        expect_within_policy(c, o.ref, o.bound, k, "matmul_transposed_b");
      }
    }
  }
}

TEST(GemmCrossCheck, GemmBothTransposedMatchesNaive) {
  // The Aᵀ·Bᵀ combination has no matmul* shim; exercise it through the
  // gemm() entry directly.
  std::uint64_t seed = 3000;
  for (std::size_t m : kDims) {
    for (std::size_t n : kDims) {
      for (std::size_t k : kDims) {
        const Operands o = make_operands(m, n, k, true, true, seed++);
        Tensor c(Shape::of(m, n));
        gemm(Trans::kYes, Trans::kYes, o.a, o.b, c);
        expect_within_policy(c, o.ref, o.bound, k, "gemm tt");
      }
    }
  }
}

TEST(GemmCrossCheck, RankOneOuterProductExact) {
  // k = 1 involves no accumulation at all, so every variant must be
  // exactly equal to the scalar product — any tiling bug that reads a
  // padded lane shows up as a hard mismatch here.
  Rng rng(7);
  Tensor a = Tensor::uniform(Shape::of(65, 1), rng, -2.0f, 2.0f);
  Tensor b = Tensor::uniform(Shape::of(1, 63), rng, -2.0f, 2.0f);
  Tensor c(Shape::of(65, 63));
  matmul(a, b, c);
  for (std::size_t i = 0; i < 65; ++i) {
    for (std::size_t j = 0; j < 63; ++j) {
      ASSERT_EQ(c(i, j), a(i, 0) * b(0, j)) << i << "," << j;
    }
  }
}

TEST(Gemm, BetaOneAccumulatesIntoC) {
  Rng rng(8);
  const std::size_t m = 5, n = 17, k = 33;  // all straddle tile edges
  Tensor a = Tensor::uniform(Shape::of(m, k), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(k, n), rng, -1.0f, 1.0f);
  Tensor base = Tensor::uniform(Shape::of(m, n), rng, -1.0f, 1.0f);
  Tensor c = base;
  gemm(Trans::kNo, Trans::kNo, a, b, c, /*beta=*/1.0f);
  Tensor product(Shape::of(m, n));
  gemm(Trans::kNo, Trans::kNo, a, b, product, /*beta=*/0.0f);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], base[i] + product[i], 1e-5f);
  }
}

TEST(Gemm, BetaScalesExistingC) {
  Rng rng(9);
  const std::size_t m = 4, n = 16, k = 8;
  Tensor a = Tensor::uniform(Shape::of(m, k), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(k, n), rng, -1.0f, 1.0f);
  Tensor base = Tensor::full(Shape::of(m, n), 2.0f);
  Tensor c = base;
  gemm(Trans::kNo, Trans::kNo, a, b, c, /*beta=*/0.5f);
  Tensor product(Shape::of(m, n));
  gemm(Trans::kNo, Trans::kNo, a, b, product);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], 1.0f + product[i], 1e-5f);
  }
}

TEST(Gemm, PrepackedAMatchesFreshPackAcrossReuse) {
  // Conv2D's contract: pack the weight panel once, reuse it against a
  // stream of different B matrices. Results must be bit-identical to
  // packing fresh each time.
  Rng rng(10);
  const std::size_t m = 6, n = 49, k = 150;
  Tensor a = Tensor::uniform(Shape::of(m, k), rng, -1.0f, 1.0f);
  const PackedA packed = pack_a(Trans::kNo, m, k, a.data(), k);
  for (int trial = 0; trial < 4; ++trial) {
    Tensor b = Tensor::uniform(Shape::of(k, n), rng, -1.0f, 1.0f);
    Tensor via_prepack(Shape::of(m, n));
    gemm_prepacked(packed, Trans::kNo, n, b.data(), n, 0.0f,
                   via_prepack.data(), n);
    Tensor via_gemm(Shape::of(m, n));
    gemm(Trans::kNo, Trans::kNo, a, b, via_gemm);
    for (std::size_t i = 0; i < via_gemm.numel(); ++i) {
      ASSERT_EQ(via_prepack[i], via_gemm[i]) << "trial " << trial;
    }
  }
}

TEST(Gemm, RepeatCallsAreBitIdentical) {
  // Kernel-level determinism underpins the end-to-end bit-identical
  // TrainingHistory guarantee (test_integration.cpp).
  Rng rng(11);
  const std::size_t m = 65, n = 130, k = 63;
  Tensor a = Tensor::uniform(Shape::of(m, k), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(k, n), rng, -1.0f, 1.0f);
  Tensor c1(Shape::of(m, n));
  Tensor c2(Shape::of(m, n));
  matmul(a, b, c1);
  matmul(a, b, c2);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.numel() * sizeof(float)));
}

TEST(Gemm, ZeroLengthContraction) {
  // k = 0 through the raw-pointer entry: C must become beta·C without
  // touching the (empty) operands.
  std::vector<float> c(6, 3.0f);
  gemm(Trans::kNo, Trans::kNo, 2, 3, 0, nullptr, 1, nullptr, 3, 0.0f,
       c.data(), 3);
  for (float v : c) EXPECT_EQ(v, 0.0f);
  std::vector<float> c2(6, 3.0f);
  gemm(Trans::kNo, Trans::kNo, 2, 3, 0, nullptr, 1, nullptr, 3, 0.5f,
       c2.data(), 3);
  for (float v : c2) EXPECT_EQ(v, 1.5f);
}

TEST(Gemm, TensorEntryValidatesShapes) {
  Tensor a(Shape::of(2, 3));
  Tensor b(Shape::of(4, 5));  // inner dim mismatch
  Tensor c(Shape::of(2, 5));
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, a, b, c), Error);
  Tensor b_ok(Shape::of(3, 5));
  Tensor c_bad(Shape::of(2, 4));
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, a, b_ok, c_bad), Error);
  EXPECT_THROW(gemm(Trans::kNo, Trans::kNo, a.reshaped(Shape::of(6)), b_ok, c),
               Error);
}

TEST(Gemm, StridedOutputLeavesGapsUntouched) {
  // Write a 2×2 product into the top-left corner of a 2×5 buffer via
  // ldc=5; the other columns must survive.
  Rng rng(12);
  Tensor a = Tensor::uniform(Shape::of(2, 3), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(3, 2), rng, -1.0f, 1.0f);
  std::vector<float> c(10, 99.0f);
  gemm(Trans::kNo, Trans::kNo, 2, 2, 3, a.data(), 3, b.data(), 2, 0.0f,
       c.data(), 5);
  Tensor ref = testing::naive_matmul(a, b, false, false);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(c[i * 5 + j], ref(i, j), 1e-5f);
    }
    for (std::size_t j = 2; j < 5; ++j) EXPECT_EQ(c[i * 5 + j], 99.0f);
  }
}

}  // namespace
}  // namespace fedcav::ops
