// Multi-process integration tests for the daemon/worker split
// (DESIGN.md §14): fork+exec the real fedcav_daemon / fedcav_worker
// binaries over a Unix socket in a temp dir and assert against the
// in-process simulation.
//
//   * BitIdenticalToInProcessRun — the acceptance gate of PR 8: one
//     daemon + N workers must produce byte-identical final weights and
//     round CSV (timings excluded) vs the single-process run with the
//     same seed.
//   * KilledWorkerBecomesDropout / ...UploadFailure — satellite 3: a
//     worker that vanishes mid-protocol books into RoundRecord's
//     dropout / upload-failure counters instead of hanging the daemon.
//
// Every child is watched by a kill-after-deadline reaper so a protocol
// hang fails the test instead of wedging ctest.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/fl/simulation.hpp"
#include "src/metrics/history.hpp"
#include "src/utils/cli.hpp"
#include "tools/federation_common.hpp"

#ifndef FEDCAV_TOOL_BIN_DIR
#error "FEDCAV_TOOL_BIN_DIR must point at the built tools directory"
#endif

namespace fedcav {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Spawn `argv` (NULL-terminated convention handled here). Returns pid.
pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Wait for every pid, SIGKILLing stragglers after `deadline_s`.
/// Returns the children's exit codes (-1 = killed / abnormal).
std::vector<int> reap_all(std::vector<pid_t> pids, double deadline_s) {
  std::vector<int> codes(pids.size(), -1);
  const int ticks = static_cast<int>(deadline_s * 20.0);
  for (int tick = 0; tick < ticks; ++tick) {
    bool all_done = true;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] == 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pids[i], &status, WNOHANG);
      if (got == pids[i]) {
        codes[i] = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        pids[i] = 0;
      } else if (got == 0) {
        all_done = false;
      } else {
        pids[i] = 0;  // ECHILD etc — treat as abnormal
      }
    }
    if (all_done) return codes;
    ::usleep(50000);
  }
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (pids[i] != 0) {
      ::kill(pids[i], SIGKILL);
      ::waitpid(pids[i], nullptr, 0);
      ADD_FAILURE() << "child " << i << " hung past " << deadline_s
                    << "s and was SIGKILLed";
    }
  }
  return codes;
}

struct FederationRun {
  std::string dir;
  std::string csv;
  std::string weights;
  std::vector<int> exit_codes;  // [0] = daemon, [1..] = workers
};

struct FederationOptions {
  /// Flags appended to the daemon AND every worker (config knobs like
  /// --derived-seeds / --straggler must agree on both sides).
  std::vector<std::string> common;
  /// Per-worker extra flags (failure injection, token mismatch — a
  /// repeated flag's last occurrence wins in CliParser).
  std::vector<std::vector<std::string>> worker_extra;
  /// Run over TCP loopback instead of a Unix socket. `tcp_slot` keeps
  /// the TCP tests within this binary off each other's PID-derived port.
  bool tcp = false;
  int tcp_slot = 0;
};

/// Launch 1 daemon + `clients` workers over a socket (or TCP loopback)
/// in a fresh temp dir.
FederationRun run_federation(std::size_t clients, std::size_t rounds,
                             const FederationOptions& opts = {}) {
  char tmpl[] = "/tmp/fedcavXXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  FederationRun run;
  run.dir = dir;
  run.csv = run.dir + "/history.csv";
  run.weights = run.dir + "/final.bin";
  const std::string bin = FEDCAV_TOOL_BIN_DIR;
  const std::string clients_s = std::to_string(clients);

  // Endpoint flags: a socket path inside the temp dir, or a PID-derived
  // loopback port (parallel ctest binaries must not collide; 41000+ is
  // clear of test_transport's 21000+ range).
  std::vector<std::string> endpoint;
  if (opts.tcp) {
    const int port =
        41000 + static_cast<int>(::getpid() % 19000) + opts.tcp_slot;
    endpoint = {"--tcp", "127.0.0.1:" + std::to_string(port)};
  } else {
    endpoint = {"--socket", run.dir + "/fed.sock"};
  }

  std::vector<pid_t> pids;
  std::vector<std::string> daemon_argv = {
      bin + "/fedcav_daemon", endpoint[0], endpoint[1], "--clients", clients_s,
      "--rounds", std::to_string(rounds), "--csv", run.csv,
      "--weights", run.weights};
  daemon_argv.insert(daemon_argv.end(), opts.common.begin(), opts.common.end());
  pids.push_back(spawn(daemon_argv));
  for (std::size_t w = 0; w < clients; ++w) {
    std::vector<std::string> argv = {bin + "/fedcav_worker", endpoint[0],
                                     endpoint[1], "--clients", clients_s,
                                     "--rank", std::to_string(w + 1)};
    argv.insert(argv.end(), opts.common.begin(), opts.common.end());
    if (w < opts.worker_extra.size()) {
      argv.insert(argv.end(), opts.worker_extra[w].begin(),
                  opts.worker_extra[w].end());
    }
    pids.push_back(spawn(argv));
  }
  run.exit_codes = reap_all(std::move(pids), /*deadline_s=*/120.0);
  return run;
}

/// The in-process equivalent of the tools' federation flags: parse
/// `flags` through the same CliParser/flag set the daemon and workers
/// use, so config drift between the two paths is structurally
/// impossible.
fl::SimulationConfig federation_config_from(
    const std::vector<std::string>& flags) {
  CliParser cli("test_daemon", "in-process reference run");
  tools::add_federation_flags(cli);
  std::vector<const char*> argv = {"test_daemon"};
  for (const std::string& f : flags) argv.push_back(f.c_str());
  EXPECT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  return tools::federation_config(cli);
}

fl::SimulationConfig default_federation_config() {
  return federation_config_from({});
}

TEST(Daemon, BitIdenticalToInProcessRun) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 3;
  const FederationRun run = run_federation(kClients, kRounds);
  for (std::size_t i = 0; i < run.exit_codes.size(); ++i) {
    EXPECT_EQ(run.exit_codes[i], 0) << (i == 0 ? "daemon" : "worker") << " #" << i;
  }

  // Reference: same config, same seed, in-process fabric.
  fl::Simulation sim = fl::build_simulation(default_federation_config());
  sim.server->run(kRounds);
  std::ostringstream ref_csv;
  sim.server->history().write_csv(ref_csv, /*include_timings=*/false);
  const std::string ref_weights_path = run.dir + "/ref.bin";
  tools::write_weights_file(ref_weights_path, sim.server->global_weights());

  EXPECT_EQ(read_file(run.csv), ref_csv.str())
      << "multi-process round history diverged from the in-process run";
  const std::string remote_weights = read_file(run.weights);
  // write_f32_span = u64 element count + 4 bytes per float.
  EXPECT_EQ(remote_weights.size(), 8 + sim.server->global_weights().size() * 4);
  EXPECT_EQ(remote_weights, read_file(ref_weights_path))
      << "final global weights are not bit-identical";
}

/// Parse `csv` back into RoundRecord-shaped tuples via the header row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream cols(line);
    std::string cell;
    while (std::getline(cols, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::size_t column_index(const std::vector<std::string>& header,
                         const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  ADD_FAILURE() << "no CSV column named " << name;
  return 0;
}

TEST(Daemon, KilledWorkerBecomesDropoutNotHang) {
  // Worker 1 exits the instant it sees round 2's downlink: no metadata
  // ever arrives, the daemon must observe the EOF and book a phase-①
  // dropout — within the watchdog deadline, i.e. without waiting out
  // the 30 s receive timeout per remaining round.
  FederationOptions opts;
  opts.worker_extra = {{"--exit-before-round", "2"}};
  const FederationRun run = run_federation(2, 3, opts);
  EXPECT_EQ(run.exit_codes[0], 0) << "daemon";

  const auto rows = parse_csv(read_file(run.csv));
  ASSERT_EQ(rows.size(), 4u);  // header + 3 rounds
  const std::size_t dropouts = column_index(rows[0], "dropouts");
  const std::size_t participants = column_index(rows[0], "participants");
  EXPECT_EQ(rows[1][dropouts], "0");
  EXPECT_EQ(rows[2][dropouts], "1");  // the killed worker
  EXPECT_EQ(rows[3][dropouts], "1");  // still gone in round 3
  EXPECT_EQ(rows[2][participants], "1");
}

TEST(Daemon, KilledWorkerMidUplinkBecomesUploadFailure) {
  // Worker 1 uplinks round 2's metadata and then dies before the
  // report: phase ① succeeds, phase ② must book an upload failure.
  FederationOptions opts;
  opts.worker_extra = {{"--exit-after-metadata", "2"}};
  const FederationRun run = run_federation(2, 2, opts);
  EXPECT_EQ(run.exit_codes[0], 0) << "daemon";

  const auto rows = parse_csv(read_file(run.csv));
  ASSERT_EQ(rows.size(), 3u);  // header + 2 rounds
  const std::size_t uploads = column_index(rows[0], "upload_failures");
  const std::size_t dropouts = column_index(rows[0], "dropouts");
  EXPECT_EQ(rows[1][uploads], "0");
  EXPECT_EQ(rows[2][uploads], "1");
  EXPECT_EQ(rows[2][dropouts], "0");  // phase ① completed normally
}

TEST(Daemon, TcpFederationBitIdenticalToInProcessRun) {
  // The PR 8 acceptance gate, re-run over authenticated TCP loopback:
  // the backend swap must not move a single byte of CSV or weights.
  constexpr std::size_t kClients = 2;
  constexpr std::size_t kRounds = 2;
  FederationOptions opts;
  opts.tcp = true;
  opts.tcp_slot = 0;
  opts.common = {"--auth-token", "pr11-tcp"};
  const FederationRun run = run_federation(kClients, kRounds, opts);
  for (std::size_t i = 0; i < run.exit_codes.size(); ++i) {
    EXPECT_EQ(run.exit_codes[i], 0) << (i == 0 ? "daemon" : "worker") << " #" << i;
  }

  fl::Simulation sim = fl::build_simulation(
      federation_config_from({"--clients", std::to_string(kClients)}));
  sim.server->run(kRounds);
  std::ostringstream ref_csv;
  sim.server->history().write_csv(ref_csv, /*include_timings=*/false);
  const std::string ref_weights_path = run.dir + "/ref.bin";
  tools::write_weights_file(ref_weights_path, sim.server->global_weights());

  EXPECT_EQ(read_file(run.csv), ref_csv.str())
      << "TCP round history diverged from the in-process run";
  EXPECT_EQ(read_file(run.weights), read_file(ref_weights_path))
      << "TCP final weights are not bit-identical";
}

TEST(Daemon, DerivedSeedsSampledStragglerParityAcrossProcessLayouts) {
  // THE regression pin of PR 10's tentpole. Under the legacy stream
  // semantics this exact config — client sampling plus straggler drops —
  // diverged across process layouts, because remote workers trained on
  // every downlink (advancing their RNG streams) while in-process
  // straggler-dropped clients never trained. With --derived-seeds every
  // consumer reseeds per round from (seed, round, id, stream), so the
  // in-process run, the Unix-socket federation, and the TCP federation
  // must produce byte-identical CSV history and final weights.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 3;
  const std::vector<std::string> knobs = {"--derived-seeds", "--straggler",
                                          "0.25", "--sample-ratio", "0.5"};

  std::vector<std::string> ref_flags = knobs;
  ref_flags.insert(ref_flags.end(), {"--clients", std::to_string(kClients)});
  fl::Simulation sim = fl::build_simulation(federation_config_from(ref_flags));
  ASSERT_EQ(sim.server->config().rng_mode, RngMode::kDerived);
  sim.server->run(kRounds);
  std::ostringstream ref_csv_stream;
  sim.server->history().write_csv(ref_csv_stream, /*include_timings=*/false);
  const std::string ref_csv = ref_csv_stream.str();
  // The config must actually exercise the divergence: at least one
  // straggler drop across the run, or the pin proves nothing.
  std::size_t straggler_drops = 0;
  for (const auto& record : sim.server->history().records()) {
    straggler_drops += record.straggler_drops;
  }
  EXPECT_GT(straggler_drops, 0u)
      << "straggler knob never fired; pick a different seed/prob";

  FederationOptions unix_opts;
  unix_opts.common = knobs;
  const FederationRun unix_run = run_federation(kClients, kRounds, unix_opts);
  for (std::size_t i = 0; i < unix_run.exit_codes.size(); ++i) {
    EXPECT_EQ(unix_run.exit_codes[i], 0)
        << (i == 0 ? "daemon" : "worker") << " #" << i << " (unix)";
  }
  EXPECT_EQ(read_file(unix_run.csv), ref_csv)
      << "unix-socket derived-seed history diverged from in-process";

  FederationOptions tcp_opts;
  tcp_opts.common = knobs;
  tcp_opts.common.insert(tcp_opts.common.end(), {"--auth-token", "pr11"});
  tcp_opts.tcp = true;
  tcp_opts.tcp_slot = 1;
  const FederationRun tcp_run = run_federation(kClients, kRounds, tcp_opts);
  for (std::size_t i = 0; i < tcp_run.exit_codes.size(); ++i) {
    EXPECT_EQ(tcp_run.exit_codes[i], 0)
        << (i == 0 ? "daemon" : "worker") << " #" << i << " (tcp)";
  }
  EXPECT_EQ(read_file(tcp_run.csv), ref_csv)
      << "TCP derived-seed history diverged from in-process";

  const std::string ref_weights_path = unix_run.dir + "/ref.bin";
  tools::write_weights_file(ref_weights_path, sim.server->global_weights());
  const std::string ref_weights = read_file(ref_weights_path);
  EXPECT_EQ(read_file(unix_run.weights), ref_weights)
      << "unix-socket derived-seed weights are not bit-identical";
  EXPECT_EQ(read_file(tcp_run.weights), ref_weights)
      << "TCP derived-seed weights are not bit-identical";
}

TEST(Daemon, WrongAuthTokenFailsFastAndLoud) {
  // Satellite 2: the daemon runs with abort_on_reject — a worker
  // bringing the wrong token must sink both processes promptly with
  // nonzero exits, not leave the daemon waiting out its accept timeout.
  FederationOptions opts;
  opts.tcp = true;
  opts.tcp_slot = 2;
  opts.common = {"--auth-token", "the-right-token"};
  opts.worker_extra = {{"--auth-token", "the-wrong-token"}};
  const FederationRun run = run_federation(1, 1, opts);
  EXPECT_NE(run.exit_codes[0], 0) << "daemon must abort on the rejected join";
  EXPECT_NE(run.exit_codes[1], 0) << "worker must fail on the reject";
}

}  // namespace
}  // namespace fedcav
