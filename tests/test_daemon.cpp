// Multi-process integration tests for the daemon/worker split
// (DESIGN.md §14): fork+exec the real fedcav_daemon / fedcav_worker
// binaries over a Unix socket in a temp dir and assert against the
// in-process simulation.
//
//   * BitIdenticalToInProcessRun — the acceptance gate of PR 8: one
//     daemon + N workers must produce byte-identical final weights and
//     round CSV (timings excluded) vs the single-process run with the
//     same seed.
//   * KilledWorkerBecomesDropout / ...UploadFailure — satellite 3: a
//     worker that vanishes mid-protocol books into RoundRecord's
//     dropout / upload-failure counters instead of hanging the daemon.
//
// Every child is watched by a kill-after-deadline reaper so a protocol
// hang fails the test instead of wedging ctest.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/fl/simulation.hpp"
#include "src/metrics/history.hpp"
#include "src/utils/cli.hpp"
#include "tools/federation_common.hpp"

#ifndef FEDCAV_TOOL_BIN_DIR
#error "FEDCAV_TOOL_BIN_DIR must point at the built tools directory"
#endif

namespace fedcav {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Spawn `argv` (NULL-terminated convention handled here). Returns pid.
pid_t spawn(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Wait for every pid, SIGKILLing stragglers after `deadline_s`.
/// Returns the children's exit codes (-1 = killed / abnormal).
std::vector<int> reap_all(std::vector<pid_t> pids, double deadline_s) {
  std::vector<int> codes(pids.size(), -1);
  const int ticks = static_cast<int>(deadline_s * 20.0);
  for (int tick = 0; tick < ticks; ++tick) {
    bool all_done = true;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (pids[i] == 0) continue;
      int status = 0;
      const pid_t got = ::waitpid(pids[i], &status, WNOHANG);
      if (got == pids[i]) {
        codes[i] = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        pids[i] = 0;
      } else if (got == 0) {
        all_done = false;
      } else {
        pids[i] = 0;  // ECHILD etc — treat as abnormal
      }
    }
    if (all_done) return codes;
    ::usleep(50000);
  }
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (pids[i] != 0) {
      ::kill(pids[i], SIGKILL);
      ::waitpid(pids[i], nullptr, 0);
      ADD_FAILURE() << "child " << i << " hung past " << deadline_s
                    << "s and was SIGKILLed";
    }
  }
  return codes;
}

struct FederationRun {
  std::string dir;
  std::string csv;
  std::string weights;
  std::vector<int> exit_codes;  // [0] = daemon, [1..] = workers
};

/// Launch 1 daemon + `clients` workers over a socket in a fresh temp
/// dir; `worker_extra[i]` appends per-worker flags (failure injection).
FederationRun run_federation(
    std::size_t clients, std::size_t rounds,
    const std::vector<std::vector<std::string>>& worker_extra = {}) {
  char tmpl[] = "/tmp/fedcavXXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  FederationRun run;
  run.dir = dir;
  run.csv = run.dir + "/history.csv";
  run.weights = run.dir + "/final.bin";
  const std::string socket_path = run.dir + "/fed.sock";
  const std::string bin = FEDCAV_TOOL_BIN_DIR;
  const std::string clients_s = std::to_string(clients);

  std::vector<pid_t> pids;
  pids.push_back(spawn({bin + "/fedcav_daemon", "--socket", socket_path,
                        "--clients", clients_s, "--rounds",
                        std::to_string(rounds), "--csv", run.csv, "--weights",
                        run.weights}));
  for (std::size_t w = 0; w < clients; ++w) {
    std::vector<std::string> argv = {bin + "/fedcav_worker", "--socket",
                                     socket_path, "--clients", clients_s,
                                     "--rank", std::to_string(w + 1)};
    if (w < worker_extra.size()) {
      argv.insert(argv.end(), worker_extra[w].begin(), worker_extra[w].end());
    }
    pids.push_back(spawn(argv));
  }
  run.exit_codes = reap_all(std::move(pids), /*deadline_s=*/120.0);
  return run;
}

/// The in-process equivalent of the tools' default federation flags:
/// parse an empty command line through the same CliParser/flag set the
/// daemon and workers use, so config drift between the two paths is
/// structurally impossible.
fl::SimulationConfig default_federation_config() {
  CliParser cli("test_daemon", "in-process reference run");
  tools::add_federation_flags(cli);
  const char* argv[] = {"test_daemon"};
  EXPECT_TRUE(cli.parse(1, argv));
  return tools::federation_config(cli);
}

TEST(Daemon, BitIdenticalToInProcessRun) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 3;
  const FederationRun run = run_federation(kClients, kRounds);
  for (std::size_t i = 0; i < run.exit_codes.size(); ++i) {
    EXPECT_EQ(run.exit_codes[i], 0) << (i == 0 ? "daemon" : "worker") << " #" << i;
  }

  // Reference: same config, same seed, in-process fabric.
  fl::Simulation sim = fl::build_simulation(default_federation_config());
  sim.server->run(kRounds);
  std::ostringstream ref_csv;
  sim.server->history().write_csv(ref_csv, /*include_timings=*/false);
  const std::string ref_weights_path = run.dir + "/ref.bin";
  tools::write_weights_file(ref_weights_path, sim.server->global_weights());

  EXPECT_EQ(read_file(run.csv), ref_csv.str())
      << "multi-process round history diverged from the in-process run";
  const std::string remote_weights = read_file(run.weights);
  // write_f32_span = u64 element count + 4 bytes per float.
  EXPECT_EQ(remote_weights.size(), 8 + sim.server->global_weights().size() * 4);
  EXPECT_EQ(remote_weights, read_file(ref_weights_path))
      << "final global weights are not bit-identical";
}

/// Parse `csv` back into RoundRecord-shaped tuples via the header row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::istringstream cols(line);
    std::string cell;
    while (std::getline(cols, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::size_t column_index(const std::vector<std::string>& header,
                         const std::string& name) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  ADD_FAILURE() << "no CSV column named " << name;
  return 0;
}

TEST(Daemon, KilledWorkerBecomesDropoutNotHang) {
  // Worker 1 exits the instant it sees round 2's downlink: no metadata
  // ever arrives, the daemon must observe the EOF and book a phase-①
  // dropout — within the watchdog deadline, i.e. without waiting out
  // the 30 s receive timeout per remaining round.
  const FederationRun run = run_federation(
      2, 3, {{"--exit-before-round", "2"}});
  EXPECT_EQ(run.exit_codes[0], 0) << "daemon";

  const auto rows = parse_csv(read_file(run.csv));
  ASSERT_EQ(rows.size(), 4u);  // header + 3 rounds
  const std::size_t dropouts = column_index(rows[0], "dropouts");
  const std::size_t participants = column_index(rows[0], "participants");
  EXPECT_EQ(rows[1][dropouts], "0");
  EXPECT_EQ(rows[2][dropouts], "1");  // the killed worker
  EXPECT_EQ(rows[3][dropouts], "1");  // still gone in round 3
  EXPECT_EQ(rows[2][participants], "1");
}

TEST(Daemon, KilledWorkerMidUplinkBecomesUploadFailure) {
  // Worker 1 uplinks round 2's metadata and then dies before the
  // report: phase ① succeeds, phase ② must book an upload failure.
  const FederationRun run = run_federation(
      2, 2, {{"--exit-after-metadata", "2"}});
  EXPECT_EQ(run.exit_codes[0], 0) << "daemon";

  const auto rows = parse_csv(read_file(run.csv));
  ASSERT_EQ(rows.size(), 3u);  // header + 2 rounds
  const std::size_t uploads = column_index(rows[0], "upload_failures");
  const std::size_t dropouts = column_index(rows[0], "dropouts");
  EXPECT_EQ(rows[1][uploads], "0");
  EXPECT_EQ(rows[2][uploads], "1");
  EXPECT_EQ(rows[2][dropouts], "0");  // phase ① completed normally
}

}  // namespace
}  // namespace fedcav
