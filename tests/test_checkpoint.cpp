// Checkpoint resume semantics: a run restored into a *fresh* server
// must continue bit-identically to one that never stopped — including
// sampler streams, straggler draws, per-client shuffle RNGs, the cached
// reverse-target weights, and the detector reference. v3 adds the comm
// fabric's fault-RNG streams and in-flight messages, so that holds for
// chaos runs too. Also covers the v1/v2 compatibility paths and
// malformed-file rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/comm/network.hpp"
#include "src/fl/simulation.hpp"
#include "src/tensor/serialize.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"

namespace fedcav {
namespace {

fl::SimulationConfig small_config() {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 6;
  config.server.sample_ratio = 0.5;
  config.server.local.epochs = 2;
  config.server.local.batch_size = 8;
  return config;
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

/// Everything in a RoundRecord except wall-clock timings must match
/// exactly between an uninterrupted run and a resumed one.
void expect_records_identical(const metrics::RoundRecord& a,
                              const metrics::RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.test_loss, b.test_loss);
  EXPECT_EQ(a.mean_inference_loss, b.mean_inference_loss);
  EXPECT_EQ(a.max_inference_loss, b.max_inference_loss);
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.dropouts, b.dropouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.crc_failures, b.crc_failures);
  EXPECT_EQ(a.detection_fired, b.detection_fired);
  EXPECT_EQ(a.reversed, b.reversed);
  EXPECT_EQ(a.attacked, b.attacked);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
}

TEST(CheckpointResume, FreshServerContinuesBitIdentically) {
  set_log_level(LogLevel::kError);
  // Loss-biased sampling + stragglers exercise every serialized stream:
  // the sampler's RNG and loss memory, and the straggler RNG.
  fl::SimulationConfig config = small_config();
  config.server.sampler = fl::SamplerPolicy::kLossBiased;
  config.server.straggler_drop_prob = 0.2;

  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(4);

  fl::Simulation first_half = fl::build_simulation(config);
  first_half.server->run(2);
  const std::string path = temp_path("fedcav_resume_ckpt.bin");
  first_half.server->save_checkpoint(path);

  fl::Simulation resumed = fl::build_simulation(config);
  resumed.server->load_checkpoint(path);
  EXPECT_EQ(resumed.server->current_round(), 2u);
  resumed.server->run(2);

  EXPECT_EQ(resumed.server->global_weights(), continuous.server->global_weights());
  ASSERT_EQ(resumed.server->history().rounds(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    expect_records_identical(continuous.server->history()[2 + i],
                             resumed.server->history()[i]);
  }
  std::remove(path.c_str());
}

TEST(CheckpointResume, DetectorReversesFromRestoredCache) {
  set_log_level(LogLevel::kError);
  // A replacement attack at round 3 drives round 4's inference losses
  // past the detector's reference, so round 4 reverses onto the cached
  // weights — state that only survives a save/load through the v2
  // format (a v1 resume would improvise both and diverge).
  fl::SimulationConfig config = small_config();
  config.server.detection_enabled = true;
  config.attack = "replacement";
  config.attack_rounds = {3};

  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(5);
  ASSERT_TRUE(continuous.server->history()[2].attacked);
  ASSERT_TRUE(continuous.server->history()[3].detection_fired)
      << "attack was not strong enough to trip the detector";
  ASSERT_TRUE(continuous.server->history()[3].reversed);

  fl::Simulation first_half = fl::build_simulation(config);
  first_half.server->run(3);  // attack included; detection still pending
  const std::string path = temp_path("fedcav_detect_ckpt.bin");
  first_half.server->save_checkpoint(path);

  fl::Simulation resumed = fl::build_simulation(config);
  resumed.server->load_checkpoint(path);
  resumed.server->run(2);

  ASSERT_EQ(resumed.server->history().rounds(), 2u);
  EXPECT_TRUE(resumed.server->history()[0].reversed);
  for (std::size_t i = 0; i < 2; ++i) {
    expect_records_identical(continuous.server->history()[3 + i],
                             resumed.server->history()[i]);
  }
  EXPECT_EQ(resumed.server->global_weights(), continuous.server->global_weights());
  std::remove(path.c_str());
}

TEST(CheckpointResume, FaultedRunResumesBitIdentically) {
  set_log_level(LogLevel::kError);
  // The hard case for v3: an active fault plan means the resumed run
  // must replay the exact same per-link fault draws AND see the same
  // stale duplicates still sitting in the fabric's queues.
  fl::SimulationConfig config = small_config();
  comm::FaultPlan& faults = config.server.network.faults;
  faults.seed = 31;
  faults.drop_prob = 0.25;
  faults.duplicate_prob = 0.15;
  faults.corrupt_prob = 0.1;
  config.server.min_aggregate_clients = 2;
  config.server.max_retries = 2;

  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(4);

  fl::Simulation first_half = fl::build_simulation(config);
  first_half.server->run(2);
  const std::string path = temp_path("fedcav_fault_ckpt.bin");
  first_half.server->save_checkpoint(path);

  fl::Simulation resumed = fl::build_simulation(config);
  resumed.server->load_checkpoint(path);
  resumed.server->run(2);

  EXPECT_EQ(resumed.server->global_weights(), continuous.server->global_weights());
  ASSERT_EQ(resumed.server->history().rounds(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    expect_records_identical(continuous.server->history()[2 + i],
                             resumed.server->history()[i]);
  }
  // Fabric accounting survives the checkpoint boundary: the resumed
  // fabric's books still balance. (The v3 format dropped the counters,
  // so a resumed run restarted them at zero while the queues carried
  // in-flight duplicates, and this conservation sum broke.)
  const comm::InMemoryNetwork& net = *resumed.server->network();
  const comm::TrafficStats traffic = net.total_stats();
  const comm::FaultStats fs = net.fault_stats();
  EXPECT_EQ(traffic.messages_sent + fs.duplicated,
            fs.delivered + fs.dropped + fs.crash_dropped +
                net.pending_messages());
  std::remove(path.c_str());
}

TEST(CheckpointResume, QuantizedRunWithPendingResidualResumesBitIdentically) {
  set_log_level(LogLevel::kError);
  // The v5 payload under test: after two int8 + top-k rounds every
  // participant holds a nonzero error-feedback residual, and the next
  // round's uplink delta depends on it. A resume that dropped the
  // residual would code different deltas and diverge immediately.
  fl::SimulationConfig config = small_config();
  config.server.quant = comm::QuantMode::kInt8;
  config.server.quant_keep = 0.5;

  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(4);

  fl::Simulation first_half = fl::build_simulation(config);
  first_half.server->run(2);
  const std::string path = temp_path("fedcav_quant_ckpt.bin");
  first_half.server->save_checkpoint(path);  // v5 by default

  fl::Simulation resumed = fl::build_simulation(config);
  resumed.server->load_checkpoint(path);
  EXPECT_EQ(resumed.server->current_round(), 2u);
  resumed.server->run(2);

  EXPECT_EQ(resumed.server->global_weights(), continuous.server->global_weights());
  ASSERT_EQ(resumed.server->history().rounds(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    expect_records_identical(continuous.server->history()[2 + i],
                             resumed.server->history()[i]);
  }

  // Prior formats still round-trip for the same run — a v4 file simply
  // never carried the residual, so it loads with the residuals cleared
  // (resumable, not bit-identical).
  const std::string v4_path = temp_path("fedcav_quant_v4_ckpt.bin");
  first_half.server->save_checkpoint(v4_path, /*version=*/4);
  fl::Simulation legacy = fl::build_simulation(config);
  legacy.server->load_checkpoint(v4_path);
  EXPECT_EQ(legacy.server->current_round(), 2u);
  legacy.server->run_round();  // must run cleanly from the cleared state
  std::remove(path.c_str());
  std::remove(v4_path.c_str());
}

TEST(CheckpointResume, WritesLoadableV2Files) {
  set_log_level(LogLevel::kError);
  // The legacy fabric-free format is still writable (version = 2) and
  // loadable; on a fault-free fabric the resume stays bit-identical
  // because a fresh fabric and a quiescent one behave the same.
  fl::SimulationConfig config = small_config();
  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(3);

  fl::Simulation first_half = fl::build_simulation(config);
  first_half.server->run(1);
  const std::string path = temp_path("fedcav_v2_ckpt.bin");
  first_half.server->save_checkpoint(path, /*version=*/2);

  fl::Simulation resumed = fl::build_simulation(config);
  resumed.server->load_checkpoint(path);
  EXPECT_EQ(resumed.server->current_round(), 1u);
  resumed.server->run(2);
  EXPECT_EQ(resumed.server->global_weights(), continuous.server->global_weights());
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsUnsupportedSaveVersion) {
  set_log_level(LogLevel::kError);
  fl::Simulation sim = fl::build_simulation(small_config());
  EXPECT_THROW(sim.server->save_checkpoint(temp_path("never_written.bin"), 1), Error);
  EXPECT_THROW(sim.server->save_checkpoint(temp_path("never_written.bin"), 7), Error);
}

TEST(CheckpointResume, V6RoundTripsDerivedSeedMode) {
  set_log_level(LogLevel::kError);
  // The v6 payload carries the RNG mode: a derived-seed run restored
  // into a fresh (legacy-default) server must come back in derived mode,
  // or the resumed half would re-derive nothing and diverge.
  fl::SimulationConfig config = small_config();
  config.server.rng_mode = RngMode::kDerived;
  config.server.straggler_drop_prob = 0.2;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(2);
  const std::string path = temp_path("fedcav_v6_mode_ckpt.bin");
  sim.server->save_checkpoint(path);  // default version = 6

  fl::SimulationConfig legacy_config = small_config();
  legacy_config.server.straggler_drop_prob = 0.2;
  ASSERT_EQ(legacy_config.server.rng_mode, RngMode::kLegacyStream);
  fl::Simulation resumed = fl::build_simulation(legacy_config);
  resumed.server->load_checkpoint(path);
  EXPECT_EQ(resumed.server->config().rng_mode, RngMode::kDerived);

  // And the resumed run continues bit-identically to the unbroken one.
  fl::Simulation continuous = fl::build_simulation(config);
  continuous.server->run(4);
  resumed.server->run(2);
  EXPECT_EQ(resumed.server->global_weights(),
            continuous.server->global_weights());
  std::remove(path.c_str());
}

TEST(CheckpointResume, PreV6FilesLoadInLegacyStreamMode) {
  set_log_level(LogLevel::kError);
  // A v5 file has no RNG-mode byte; loading one must force legacy-stream
  // mode even into a server configured for derived seeds — the old file
  // recorded advancing streams, not per-round derivation.
  fl::SimulationConfig config = small_config();
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);
  const std::string path = temp_path("fedcav_v5_mode_ckpt.bin");
  sim.server->save_checkpoint(path, /*version=*/5);

  fl::SimulationConfig derived_config = small_config();
  derived_config.server.rng_mode = RngMode::kDerived;
  fl::Simulation resumed = fl::build_simulation(derived_config);
  resumed.server->load_checkpoint(path);
  EXPECT_EQ(resumed.server->config().rng_mode, RngMode::kLegacyStream);
  std::remove(path.c_str());
}

TEST(CheckpointResume, LoadsLegacyV1Files) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config();
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);
  const nn::Weights weights = sim.server->global_weights();

  // Hand-written v1 payload: magic, round, weights — nothing else.
  ByteBuffer buf;
  write_u64(buf, 0xfedca5c4ec9017ULL);
  write_u64(buf, 7);
  write_f32_span(buf, weights);
  const std::string path = temp_path("fedcav_v1_ckpt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
  }

  fl::Simulation fresh = fl::build_simulation(config);
  fresh.server->load_checkpoint(path);
  EXPECT_EQ(fresh.server->current_round(), 7u);
  EXPECT_EQ(fresh.server->global_weights(), weights);
  EXPECT_FALSE(fresh.server->detector().has_reference());
  fresh.server->run_round();  // resumable, just not bit-identical
  EXPECT_EQ(fresh.server->current_round(), 8u);
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsClientCountMismatch) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config();
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);
  const std::string path = temp_path("fedcav_mismatch_ckpt.bin");
  sim.server->save_checkpoint(path);

  fl::SimulationConfig other = small_config();
  other.partition.num_clients = 5;
  fl::Simulation smaller = fl::build_simulation(other);
  EXPECT_THROW(smaller.server->load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsTrailingBytes) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = small_config();
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);
  const std::string path = temp_path("fedcav_trailing_ckpt.bin");
  sim.server->save_checkpoint(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\0');
  }
  fl::Simulation fresh = fl::build_simulation(config);
  EXPECT_THROW(fresh.server->load_checkpoint(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedcav
