// Unit tests for src/utils: RNG, strings, CLI, CSV, thread pool, timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "src/utils/cli.hpp"
#include "src/utils/csv.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/rng.hpp"
#include "src/utils/string_util.hpp"
#include "src/utils/threadpool.hpp"
#include "src/utils/timer.hpp"

namespace fedcav {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(99);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(std::uint64_t{7}));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), Error);
}

TEST(Rng, SignedUniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(DeriveSeed, DeterministicAndComponentSensitive) {
  // The whole point of derived seeds (DESIGN.md §16) is that the value
  // is a pure function of its four components — same inputs, same seed,
  // in any process — and that every component matters.
  const std::uint64_t base =
      derive_seed(2021, 3, 5, RngStream::kClientTrain);
  EXPECT_EQ(base, derive_seed(2021, 3, 5, RngStream::kClientTrain));
  EXPECT_NE(base, derive_seed(2022, 3, 5, RngStream::kClientTrain));
  EXPECT_NE(base, derive_seed(2021, 4, 5, RngStream::kClientTrain));
  EXPECT_NE(base, derive_seed(2021, 3, 6, RngStream::kClientTrain));
  EXPECT_NE(base, derive_seed(2021, 3, 5, RngStream::kStraggler));
  EXPECT_NE(base, derive_seed(2021, 3, 5, RngStream::kSampler));
}

TEST(DeriveSeed, NearbyInputsProduceWellMixedSeeds) {
  // Consecutive (round, client) pairs must not land on correlated
  // streams: sample a block of derived seeds and require them unique.
  std::set<std::uint64_t> seen;
  for (std::uint64_t round = 0; round < 32; ++round) {
    for (std::uint64_t client = 0; client < 32; ++client) {
      seen.insert(derive_seed(7, round, client, RngStream::kClientTrain));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 32u);
}

TEST(DerivedBernoulli, PureCoinMatchesProbabilityAndEdgeCases) {
  // p <= 0 is always false (the "no stragglers" configs never touch the
  // RNG), p >= 1 always true, and the coin is reproducible — the same
  // verdict a remote worker computes for itself.
  EXPECT_FALSE(derived_bernoulli(1, 2, 3, RngStream::kStraggler, 0.0));
  EXPECT_FALSE(derived_bernoulli(1, 2, 3, RngStream::kStraggler, -1.0));
  EXPECT_TRUE(derived_bernoulli(1, 2, 3, RngStream::kStraggler, 1.0));
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto id = static_cast<std::uint64_t>(i);
    const bool coin = derived_bernoulli(17, 1, id, RngStream::kStraggler, 0.3);
    EXPECT_EQ(coin, derived_bernoulli(17, 1, id, RngStream::kStraggler, 0.3));
    hits += coin ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsLookGaussian) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalSkipsZeroWeight) {
  Rng rng(19);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(19);
  std::vector<double> empty;
  EXPECT_THROW(rng.categorical(empty), Error);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), Error);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(29);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(29);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child and parent outputs should not be identical streams.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// ------------------------------------------------------------- strings

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleToken) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtil, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(StringUtil, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringUtil, ToLowerHandlesMixedCase) {
  EXPECT_EQ(to_lower("FedCAV"), "fedcav");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, ParseIntAcceptsSignedValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 7 "), 7);
}

TEST(StringUtil, ParseIntRejectsGarbage) {
  EXPECT_THROW(parse_int("12x"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("1.5"), Error);
}

TEST(StringUtil, ParseDoubleAcceptsScientific) {
  EXPECT_DOUBLE_EQ(parse_double("2.5e-3"), 2.5e-3);
  EXPECT_DOUBLE_EQ(parse_double("-1.25"), -1.25);
}

TEST(StringUtil, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.2.3"), Error);
}

TEST(StringUtil, ParseBoolAllForms) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("YES"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("on"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("No"));
  EXPECT_FALSE(parse_bool("0"));
  EXPECT_FALSE(parse_bool("off"));
  EXPECT_THROW(parse_bool("maybe"), Error);
}

TEST(StringUtil, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
}

// ----------------------------------------------------------------- cli

TEST(Cli, DefaultsApplyWithoutArgs) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  cli.add_double("lr", 0.01, "learning rate");
  cli.add_string("name", "digits", "dataset");
  cli.add_flag("fast", "fast mode");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("rounds"), 50);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.01);
  EXPECT_EQ(cli.get_string("name"), "digits");
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  cli.add_double("lr", 0.01, "lr");
  cli.add_flag("fast", "fast");
  const char* argv[] = {"prog", "--rounds", "10", "--lr=0.5", "--fast"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("rounds"), 10);
  EXPECT_DOUBLE_EQ(cli.get_double("lr"), 0.5);
  EXPECT_TRUE(cli.get_flag("fast"));
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsMissingValue) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  const char* argv[] = {"prog", "--rounds"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, RejectsMalformedValueAtParseTime) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  const char* argv[] = {"prog", "--rounds", "ten"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsPositionalArgument) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, RejectsDuplicateDeclaration) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  EXPECT_THROW(cli.add_double("rounds", 1.0, "dup"), Error);
}

TEST(Cli, TypeMismatchOnGetThrows) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 50, "rounds");
  EXPECT_THROW(cli.get_double("rounds"), Error);
  EXPECT_THROW(cli.get_int("missing"), Error);
}

TEST(Cli, HelpTextMentionsOptionsAndDefaults) {
  CliParser cli("prog", "does things");
  cli.add_int("rounds", 50, "round count");
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("--rounds"), std::string::npos);
  EXPECT_NE(help.find("default: 50"), std::string::npos);
  EXPECT_NE(help.find("does things"), std::string::npos);
}

// ----------------------------------------------------------------- csv

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Csv, CellBuilderFormatsTypes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"name", "value", "count"});
  csv.cell(std::string("x")).cell(1.5, 2).cell(static_cast<long long>(7)).end_row();
  EXPECT_EQ(out.str(), "name,value,count\nx,1.50,7\n");
}

TEST(Csv, RowWidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), Error);
}

TEST(Csv, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), Error);
}

TEST(MarkdownTable, RendersAlignedPipes) {
  MarkdownTable table({"name", "acc"});
  table.add_row({"fedcav", "0.91"});
  table.add_row({"fedavg", "0.9"});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("| name   |"), std::string::npos);
  EXPECT_NE(rendered.find("| fedcav | 0.91 |"), std::string::npos);
  // Separator row present.
  EXPECT_NE(rendered.find("|---"), std::string::npos);
}

TEST(MarkdownTable, RejectsMismatchedRow) {
  MarkdownTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only"}), Error);
}

// ---------------------------------------------------------- threadpool

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t i) {
        if (i == 3) throw Error("boom");
      }),
      Error);
}

TEST(ThreadPool, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  auto fut = pool.submit([&] { value.store(42); });
  fut.get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw Error("task failed"); });
  EXPECT_THROW(fut.get(), Error);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_thread_pool(), &global_thread_pool());
}

TEST(ThreadPool, NestedParallelForCompletesAndCoversEveryIndex) {
  // A worker calling back into its own pool must not block on the queue
  // (the classic fork-join deadlock); the inner loop runs inline.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&](std::size_t j) {
      hits[i * kInner + j].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t) {
                          pool.parallel_for(4, [](std::size_t j) {
                            if (j == 2) throw Error("inner failure");
                          });
                        }),
      Error);
}

TEST(ThreadPool, InWorkerThreadDistinguishesCallers) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.in_worker_thread());
  std::atomic<bool> inside{false};
  std::atomic<bool> foreign{false};
  pool.submit([&] {
      inside.store(pool.in_worker_thread());
      foreign.store(other.in_worker_thread());
    }).get();
  EXPECT_TRUE(inside.load());
  // A different pool's worker is not "inside" this pool: its
  // parallel_for calls from there still go through the queue.
  EXPECT_FALSE(foreign.load());
}

// --------------------------------------------------------------- timer

TEST(Timer, StopwatchAdvances) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.seconds(), 0.0);
  EXPECT_NEAR(watch.milliseconds(), watch.seconds() * 1e3, watch.seconds() * 1e3);
}

TEST(Timer, AccumulatingTimerSumsIntervals) {
  AccumulatingTimer timer;
  EXPECT_EQ(timer.intervals(), 0u);
  EXPECT_DOUBLE_EQ(timer.mean_seconds(), 0.0);
  timer.start();
  timer.stop();
  timer.start();
  timer.stop();
  EXPECT_EQ(timer.intervals(), 2u);
  EXPECT_GE(timer.total_seconds(), 0.0);
}

TEST(Timer, StopWithoutStartIsIgnored) {
  AccumulatingTimer timer;
  timer.stop();
  EXPECT_EQ(timer.intervals(), 0u);
}

// ------------------------------------------------------------- logging

TEST(Logging, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), Error);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(saved);
}

// --------------------------------------------------------------- error

TEST(ErrorMacro, ThrowsWithLocation) {
  try {
    FEDCAV_CHECK(false, "something failed");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("something failed"), std::string::npos);
    EXPECT_NE(what.find("test_utils.cpp"), std::string::npos);
  }
}

TEST(ErrorMacro, PassesOnTrue) {
  EXPECT_NO_THROW(FEDCAV_CHECK(true, "never"));
}

}  // namespace
}  // namespace fedcav
