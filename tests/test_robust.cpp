// Tests for the Byzantine-robust aggregation rules and straggler
// handling in the server.
#include <gtest/gtest.h>

#include "src/fl/robust.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::fl {
namespace {

ClientUpdate update_of(std::size_t id, std::vector<float> weights) {
  ClientUpdate u;
  u.client_id = id;
  u.weights = std::move(weights);
  u.num_samples = 10;
  u.inference_loss = 1.0;
  return u;
}

// ------------------------------------------------------------- median

TEST(CoordinateMedian, OddCohortPicksMiddleValue) {
  CoordinateMedian strategy;
  std::vector<ClientUpdate> updates;
  updates.push_back(update_of(0, {1.0f, -10.0f}));
  updates.push_back(update_of(1, {2.0f, 0.0f}));
  updates.push_back(update_of(2, {100.0f, 10.0f}));
  const nn::Weights out = strategy.aggregate({0.0f, 0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(CoordinateMedian, EvenCohortAveragesCentralPair) {
  CoordinateMedian strategy;
  std::vector<ClientUpdate> updates;
  updates.push_back(update_of(0, {1.0f}));
  updates.push_back(update_of(1, {3.0f}));
  updates.push_back(update_of(2, {5.0f}));
  updates.push_back(update_of(3, {100.0f}));
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(CoordinateMedian, IgnoresSingleOutlier) {
  // One Byzantine update full of huge values must not move the median.
  CoordinateMedian strategy;
  std::vector<ClientUpdate> updates;
  for (std::size_t i = 0; i < 4; ++i) updates.push_back(update_of(i, {1.0f, 2.0f}));
  updates.push_back(update_of(4, {1e9f, -1e9f}));
  const nn::Weights out = strategy.aggregate({0.0f, 0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
}

// -------------------------------------------------------- trimmed mean

TEST(TrimmedMean, TrimsTailsSymmetrically) {
  TrimmedMean strategy(0.25);  // with n=4: trim 1 from each side
  std::vector<ClientUpdate> updates;
  updates.push_back(update_of(0, {0.0f}));
  updates.push_back(update_of(1, {1.0f}));
  updates.push_back(update_of(2, {3.0f}));
  updates.push_back(update_of(3, {1000.0f}));
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 2.0f);  // mean of {1, 3}
}

TEST(TrimmedMean, ZeroTrimIsPlainMean) {
  TrimmedMean strategy(0.0);
  std::vector<ClientUpdate> updates;
  updates.push_back(update_of(0, {2.0f}));
  updates.push_back(update_of(1, {4.0f}));
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(TrimmedMean, RejectsExcessiveTrim) {
  EXPECT_THROW(TrimmedMean(0.5), Error);
  EXPECT_THROW(TrimmedMean(-0.1), Error);
}

// ---------------------------------------------------------------- krum

TEST(Krum, SelectsMemberOfTheCluster) {
  // Four clustered updates plus one far-away Byzantine: Krum must pick a
  // cluster member.
  Krum strategy(1);
  Rng rng(1);
  std::vector<ClientUpdate> updates;
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<float> w(8);
    for (auto& v : w) v = 1.0f + rng.uniform_f(-0.01f, 0.01f);
    updates.push_back(update_of(i, std::move(w)));
  }
  updates.push_back(update_of(4, std::vector<float>(8, 500.0f)));
  const std::size_t chosen = strategy.select(updates);
  EXPECT_LT(chosen, 4u);
  const nn::Weights out = strategy.aggregate(nn::Weights(8, 0.0f), updates);
  EXPECT_NEAR(out[0], 1.0f, 0.05f);
}

TEST(Krum, AggregationWeightsAreOneHot) {
  Krum strategy(1);
  std::vector<ClientUpdate> updates;
  for (std::size_t i = 0; i < 4; ++i) {
    updates.push_back(update_of(i, {static_cast<float>(i)}));
  }
  const auto weights = strategy.aggregation_weights(updates);
  double sum = 0.0;
  int ones = 0;
  for (double w : weights) {
    sum += w;
    if (w == 1.0) ++ones;
  }
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_EQ(ones, 1);
}

TEST(Krum, SingleUpdateIsReturned) {
  Krum strategy(1);
  std::vector<ClientUpdate> updates;
  updates.push_back(update_of(0, {7.0f}));
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 7.0f);
}

// ------------------------------------------------------------- factory

TEST(RobustFactory, BuildsAllRules) {
  EXPECT_EQ(make_strategy("median")->name(), "CoordinateMedian");
  EXPECT_NE(make_strategy("trimmedmean")->name().find("TrimmedMean"), std::string::npos);
  EXPECT_NE(make_strategy("krum")->name().find("Krum"), std::string::npos);
}

TEST(RobustFactory, RobustRulesSurviveByzantineRound) {
  set_log_level(LogLevel::kError);
  for (const char* name : {"median", "trimmedmean"}) {
    SimulationConfig config;
    config.dataset = "digits";
    config.model = "mlp";
    config.strategy = name;
    config.train_samples_per_class = 15;
    config.test_samples_per_class = 10;
    // IID cohort: the median of honest updates is a sensible model, so
    // the test isolates Byzantine robustness from non-IID drift.
    config.partition.scheme = data::PartitionScheme::kIidBalanced;
    config.partition.num_clients = 8;
    config.server.local.lr = 0.05f;
    config.attack = "byzantine";
    config.attack_rounds = {2, 4};
    Simulation sim = build_simulation(config);
    sim.server->run(12);
    // Robust rules keep learning through the corrupted rounds.
    EXPECT_GT(sim.server->history().best_accuracy(), 0.3) << name;
  }
}

// ----------------------------------------------------------- straggler

TEST(Straggler, DropReducesParticipantsButTrainingContinues) {
  set_log_level(LogLevel::kError);
  SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 15;
  config.test_samples_per_class = 10;
  config.partition.num_clients = 10;
  config.server.sample_ratio = 1.0;
  config.server.straggler_drop_prob = 0.5;
  config.server.local.lr = 0.05f;
  Simulation sim = build_simulation(config);
  sim.server->run(6);
  // Some rounds lost participants but none went empty.
  bool any_reduced = false;
  for (const auto& record : sim.server->history().records()) {
    EXPECT_GE(record.participants, 1u);
    EXPECT_LE(record.participants, 10u);
    if (record.participants < 10) any_reduced = true;
  }
  EXPECT_TRUE(any_reduced);
  EXPECT_GT(sim.server->history().best_accuracy(), 0.3);
}

TEST(Straggler, ZeroProbabilityKeepsFullCohort) {
  set_log_level(LogLevel::kError);
  SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 6;
  config.server.sample_ratio = 0.5;
  Simulation sim = build_simulation(config);
  const auto record = sim.server->run_round();
  EXPECT_EQ(record.participants, 3u);
}

TEST(Straggler, ValidatesProbability) {
  SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 6;
  config.server.straggler_drop_prob = 1.0;
  EXPECT_THROW(build_simulation(config), Error);
}

}  // namespace
}  // namespace fedcav::fl
