// Unit tests for src/attack: label flipping, model replacement math
// (Eq. 10-11), loss inflation, and Byzantine updates.
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/label_flip.hpp"
#include "src/attack/loss_inflation.hpp"
#include "src/attack/model_replacement.hpp"
#include "src/data/synthetic.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/error.hpp"

namespace fedcav::attack {
namespace {

data::Dataset small_corpus(std::size_t per_class = 6) {
  const data::SynthGenerator gen(data::synth_digits_config(3));
  Rng rng(4);
  return gen.generate_balanced(per_class, rng);
}

fl::ClientUpdate honest_update(std::size_t dim, float value = 0.5f) {
  fl::ClientUpdate u;
  u.client_id = 0;
  u.weights.assign(dim, value);
  u.inference_loss = 1.0;
  u.num_samples = 20;
  return u;
}

// ----------------------------------------------------------- labelflip

TEST(FlipLabels, FractionZeroChangesNothing) {
  data::Dataset clean = small_corpus();
  Rng rng(1);
  data::Dataset flipped = flip_labels(clean, 0.0, rng);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(flipped.label(i), clean.label(i));
  }
}

TEST(FlipLabels, FractionOneChangesEveryLabel) {
  data::Dataset clean = small_corpus();
  Rng rng(2);
  data::Dataset flipped = flip_labels(clean, 1.0, rng);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_NE(flipped.label(i), clean.label(i));
  }
}

TEST(FlipLabels, PartialFractionFlipsExpectedCount) {
  data::Dataset clean = small_corpus(20);  // 200 samples
  Rng rng(3);
  data::Dataset flipped = flip_labels(clean, 0.5, rng);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (flipped.label(i) != clean.label(i)) ++changed;
  }
  EXPECT_EQ(changed, clean.size() / 2);
}

TEST(FlipLabels, PixelsAreUntouched) {
  data::Dataset clean = small_corpus();
  Rng rng(4);
  data::Dataset flipped = flip_labels(clean, 1.0, rng);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(std::vector<float>(clean.pixels(i).begin(), clean.pixels(i).end()),
              std::vector<float>(flipped.pixels(i).begin(), flipped.pixels(i).end()));
  }
}

TEST(FlipLabels, RejectsBadFraction) {
  data::Dataset clean = small_corpus();
  Rng rng(5);
  EXPECT_THROW(flip_labels(clean, 1.5, rng), Error);
  EXPECT_THROW(flip_labels(clean, -0.1, rng), Error);
}

TEST(LabelFlipAdversary, ProducesMaliciousTrainedUpdate) {
  data::Dataset clean = small_corpus();
  Rng rng(6);
  data::Dataset poisoned = flip_labels(clean, 1.0, rng);
  Rng model_rng(7);
  auto model = nn::model_builder("mlp")(model_rng);
  const nn::Weights global = model->get_weights();

  fl::LocalTrainConfig config;
  config.epochs = 2;
  LabelFlipAdversary adversary(std::move(poisoned), std::move(model), config, Rng(8));

  AttackContext ctx;
  ctx.global = &global;
  ctx.round = 1;
  fl::ClientUpdate update = adversary.corrupt(honest_update(global.size()), ctx);
  EXPECT_TRUE(update.malicious);
  EXPECT_NE(update.weights, global);
  EXPECT_EQ(update.weights.size(), global.size());
}

// ----------------------------------------------------- model replacement

class ReplacementFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = small_corpus();
    Rng model_rng(17);
    auto model = nn::model_builder("mlp")(model_rng);
    Rng global_rng(17);
    global_ = nn::model_builder("mlp")(global_rng)->get_weights();
    fl::LocalTrainConfig train;
    train.epochs = 1;
    ModelReplacementConfig attack;
    attack.poison_fraction = 1.0;
    attack.reported_loss = 50.0;
    adversary_ = std::make_unique<ModelReplacementAdversary>(
        corpus_, std::move(model), train, attack, Rng(18));
  }

  data::Dataset corpus_{Shape::of(1, 14, 14), 10};
  nn::Weights global_;
  std::unique_ptr<ModelReplacementAdversary> adversary_;
};

TEST_F(ReplacementFixture, BoostsUpdateByInverseGamma) {
  AttackContext ctx;
  ctx.global = &global_;
  ctx.round = 2;
  ctx.participants = 10;
  ctx.estimated_gamma = 0.1;

  fl::ClientUpdate crafted = adversary_->corrupt(honest_update(global_.size()), ctx);
  EXPECT_TRUE(crafted.malicious);
  EXPECT_DOUBLE_EQ(crafted.inference_loss, 50.0);

  // Eq. 11: w_m − w_t = (M − w_t) / γ. Check the crafted displacement is
  // ~10× a plain malicious-training displacement in L2 norm.
  double crafted_disp = 0.0;
  for (std::size_t i = 0; i < global_.size(); ++i) {
    const double d = static_cast<double>(crafted.weights[i]) -
                     static_cast<double>(global_[i]);
    crafted_disp += d * d;
  }
  EXPECT_GT(std::sqrt(crafted_disp), 0.0);

  // Aggregating with weight γ recovers (approximately) the malicious
  // model: w_t + γ(w_m − w_t) = M.
  // Verify by checking γ·(w_m − w_t) has bounded norm (equals ‖M − w_t‖).
  double recovered = 0.0;
  for (std::size_t i = 0; i < global_.size(); ++i) {
    const double d = 0.1 * (static_cast<double>(crafted.weights[i]) -
                            static_cast<double>(global_[i]));
    recovered += d * d;
  }
  EXPECT_LT(std::sqrt(recovered), std::sqrt(crafted_disp));
}

TEST_F(ReplacementFixture, GammaOneMeansNoBoost) {
  AttackContext ctx;
  ctx.global = &global_;
  ctx.estimated_gamma = 1.0;
  fl::ClientUpdate crafted = adversary_->corrupt(honest_update(global_.size()), ctx);
  // boost = 1: the crafted update IS the malicious model (finite, sane).
  for (float w : crafted.weights) EXPECT_TRUE(std::isfinite(w));
}

TEST_F(ReplacementFixture, BoostIsCappedForTinyGamma) {
  AttackContext ctx;
  ctx.global = &global_;
  ctx.estimated_gamma = 1e-9;  // would be a 1e9× boost without the cap
  fl::ClientUpdate crafted = adversary_->corrupt(honest_update(global_.size()), ctx);
  for (float w : crafted.weights) EXPECT_TRUE(std::isfinite(w));
}

TEST_F(ReplacementFixture, NullGlobalThrows) {
  AttackContext ctx;
  ctx.global = nullptr;
  EXPECT_THROW(adversary_->corrupt(honest_update(global_.size()), ctx), Error);
}

TEST(ModelReplacement, ConfigValidation) {
  data::Dataset corpus = small_corpus();
  Rng rng(20);
  fl::LocalTrainConfig train;
  ModelReplacementConfig bad;
  bad.poison_fraction = 2.0;
  EXPECT_THROW(ModelReplacementAdversary(corpus, nn::model_builder("mlp")(rng), train,
                                         bad, Rng(21)),
               Error);
  bad = ModelReplacementConfig{};
  bad.max_boost = 0.5;
  EXPECT_THROW(ModelReplacementAdversary(corpus, nn::model_builder("mlp")(rng), train,
                                         bad, Rng(21)),
               Error);
}

TEST(ModelReplacement, NameIncludesPoisonFraction) {
  data::Dataset corpus = small_corpus();
  Rng rng(22);
  fl::LocalTrainConfig train;
  ModelReplacementConfig config;
  config.poison_fraction = 0.5;
  ModelReplacementAdversary adversary(corpus, nn::model_builder("mlp")(rng), train,
                                      config, Rng(23));
  EXPECT_NE(adversary.name().find("0.50"), std::string::npos);
}

// -------------------------------------------------------- loss inflation

TEST(LossInflation, MultipliesReportedLoss) {
  LossInflationAdversary adversary(10.0);
  AttackContext ctx;
  fl::ClientUpdate u = honest_update(4);
  u.inference_loss = 0.7;
  const nn::Weights original = u.weights;
  u = adversary.corrupt(std::move(u), ctx);
  EXPECT_DOUBLE_EQ(u.inference_loss, 7.0);
  EXPECT_EQ(u.weights, original);  // model payload untouched
  EXPECT_TRUE(u.malicious);
}

TEST(LossInflation, RejectsNonAmplifyingFactor) {
  EXPECT_THROW(LossInflationAdversary(1.0), Error);
  EXPECT_THROW(LossInflationAdversary(0.5), Error);
}

// ------------------------------------------------------------ byzantine

TEST(Byzantine, ReplacesWeightsWithNoise) {
  ByzantineAdversary adversary(1.0f, 42);
  AttackContext ctx;
  ctx.round = 1;
  fl::ClientUpdate u = adversary.corrupt(honest_update(100), ctx);
  EXPECT_TRUE(u.malicious);
  // Noise: not all equal to the honest constant.
  bool any_different = false;
  for (float w : u.weights) {
    if (w != 0.5f) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Byzantine, DeterministicPerRound) {
  ByzantineAdversary a(1.0f, 42);
  ByzantineAdversary b(1.0f, 42);
  AttackContext ctx;
  ctx.round = 3;
  const fl::ClientUpdate ua = a.corrupt(honest_update(16), ctx);
  const fl::ClientUpdate ub = b.corrupt(honest_update(16), ctx);
  EXPECT_EQ(ua.weights, ub.weights);
  ctx.round = 4;
  const fl::ClientUpdate uc = a.corrupt(honest_update(16), ctx);
  EXPECT_NE(uc.weights, ua.weights);
}

TEST(Byzantine, RejectsNonPositiveStddev) {
  EXPECT_THROW(ByzantineAdversary(0.0f), Error);
}

}  // namespace
}  // namespace fedcav::attack
