// Tests for FedCurv-lite: the quadratic-penalty optimizer path, the
// client's Fisher bookkeeping, and end-to-end training.
#include <gtest/gtest.h>

#include <cmath>

#include "src/fl/fedcurv.hpp"
#include "src/fl/simulation.hpp"
#include "src/metrics/evaluation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"

namespace fedcav {
namespace {

// ---------------------------------------------------- optimizer penalty

TEST(QuadraticPenalty, PullsTowardAnchorProportionallyToImportance) {
  Rng rng(1);
  auto model = nn::make_mlp(2, 2, 2, rng);
  const nn::Weights before = model->get_weights();

  nn::Sgd opt(nn::SgdConfig{.lr = 1.0f});
  const std::vector<float> anchor(model->num_params(), 0.0f);
  std::vector<float> importance(model->num_params(), 0.0f);
  importance[0] = 0.5f;  // only parameter 0 is "important"
  opt.set_quadratic_penalty(anchor, importance, /*lambda=*/0.2f);
  opt.step(*model);  // zero data gradient: only the penalty acts

  const nn::Weights after = model->get_weights();
  // Parameter 0 shrinks by lr·λ·F·(w−0) = 0.1·w; the rest are untouched.
  EXPECT_NEAR(after[0], before[0] * 0.9f, 1e-5f);
  for (std::size_t i = 1; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i]);
  }
}

TEST(QuadraticPenalty, ValidatesSizes) {
  nn::Sgd opt(nn::SgdConfig{.lr = 0.1f});
  const std::vector<float> anchor(4, 0.0f);
  const std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(opt.set_quadratic_penalty(anchor, wrong, 0.1f), Error);
  EXPECT_THROW(opt.set_quadratic_penalty(anchor, anchor, -0.1f), Error);

  Rng rng(2);
  auto model = nn::make_mlp(2, 2, 2, rng);
  opt.set_quadratic_penalty(anchor, anchor, 0.1f);  // wrong length for model
  EXPECT_THROW(opt.step(*model), Error);
}

// -------------------------------------------------------------- client

data::Dataset small_corpus() {
  const data::SynthGenerator gen(data::synth_digits_config(9));
  Rng rng(10);
  return gen.generate_balanced(8, rng);
}

TEST(FedCurvClient, AccumulatesStateOnlyWhenEnabled) {
  data::Dataset corpus = small_corpus();
  Rng rng(3);
  auto model = nn::model_builder("mlp")(rng);
  const nn::Weights global = model->get_weights();
  fl::Client client(0, corpus, Rng(4));

  fl::LocalTrainConfig plain;
  plain.epochs = 1;
  client.local_update(*model, global, plain);
  EXPECT_FALSE(client.has_curvature_state());

  fl::LocalTrainConfig curv = plain;
  curv.curv_lambda = 0.5f;
  client.local_update(*model, global, curv);
  EXPECT_TRUE(client.has_curvature_state());
}

TEST(FedCurvClient, PenaltyReducesDriftFromPreviousOptimum) {
  data::Dataset corpus = small_corpus();
  Rng rng_a(5);
  Rng rng_b(5);
  auto model_a = nn::model_builder("mlp")(rng_a);
  auto model_b = nn::model_builder("mlp")(rng_b);
  const nn::Weights global = model_a->get_weights();
  fl::Client plain(0, corpus, Rng(6));
  fl::Client curv(0, corpus, Rng(6));

  fl::LocalTrainConfig config;
  config.epochs = 3;
  config.lr = 0.05f;

  // First participation: both train identically; curv also records state.
  const fl::ClientUpdate first = plain.local_update(*model_a, global, config);
  fl::LocalTrainConfig curv_config = config;
  curv_config.curv_lambda = 5.0f;
  const fl::ClientUpdate curv_first = curv.local_update(*model_b, global, curv_config);

  // Second participation from a perturbed global: the penalized client
  // must land closer to its previous optimum.
  nn::Weights shifted = global;
  for (auto& w : shifted) w += 0.05f;
  const fl::ClientUpdate second = plain.local_update(*model_a, shifted, config);
  const fl::ClientUpdate curv_second = curv.local_update(*model_b, shifted, curv_config);

  auto distance = [](const nn::Weights& a, const nn::Weights& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  EXPECT_LT(distance(curv_second.weights, curv_first.weights),
            distance(second.weights, first.weights) + 1e-6);
}

// ------------------------------------------------------------ strategy

TEST(FedCurvStrategy, InjectsLambdaAndAggregatesLikeFedAvg) {
  fl::FedCurvLite strategy(0.7f);
  fl::LocalTrainConfig config;
  strategy.apply_local_overrides(config);
  EXPECT_FLOAT_EQ(config.curv_lambda, 0.7f);
  EXPECT_NE(strategy.name().find("FedCurvLite"), std::string::npos);
  EXPECT_THROW(fl::FedCurvLite(0.0f), Error);
}

TEST(FedCurvStrategy, FactoryBuildsIt) {
  EXPECT_NE(fl::make_strategy("fedcurv")->name().find("FedCurvLite"), std::string::npos);
}

TEST(FedCurvStrategy, EndToEndTrainingLearns) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcurv";
  config.train_samples_per_class = 15;
  config.test_samples_per_class = 10;
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.partition.num_clients = 8;
  config.server.sample_ratio = 0.5;
  config.server.local.lr = 0.05f;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(10);
  EXPECT_GT(sim.server->history().best_accuracy(), 0.35);
}

}  // namespace
}  // namespace fedcav
