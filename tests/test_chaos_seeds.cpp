// Regression corpus replay: every plan committed under
// tests/chaos_seeds/ is a minimized reproducer (or a stress plan) that
// once exposed — or guards against — a protocol bug. Each must replay
// green through the full oracle: invariants hold, streaming parity
// holds, and checkpoint-resume is bit-identical. A red run here means a
// previously-fixed bug has come back.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/chaos/oracle.hpp"
#include "src/chaos/plan.hpp"
#include "src/utils/logging.hpp"

#ifndef FEDCAV_CHAOS_SEED_DIR
#error "FEDCAV_CHAOS_SEED_DIR must point at tests/chaos_seeds"
#endif

namespace fedcav::chaos {
namespace {

std::vector<std::filesystem::path> seed_paths() {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(FEDCAV_CHAOS_SEED_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".plan") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(ChaosSeeds, CorpusIsNonEmptyAndWellFormed) {
  const auto paths = seed_paths();
  ASSERT_FALSE(paths.empty()) << "no .plan files in " << FEDCAV_CHAOS_SEED_DIR;
  for (const auto& path : paths) {
    const ChaosPlan plan = load_plan_file(path.string());
    // Round-tripping through text proves the file is canonical enough
    // to re-save after a shrink without semantic drift.
    EXPECT_EQ(ChaosPlan::parse(plan.to_text()), plan) << path;
  }
}

TEST(ChaosSeeds, EverySeedReplaysGreen) {
  set_log_level(LogLevel::kError);
  for (const auto& path : seed_paths()) {
    SCOPED_TRACE(path.string());
    const ChaosPlan plan = load_plan_file(path.string());
    const OracleResult result = run_oracle(plan);
    EXPECT_TRUE(result.passed)
        << "seed regressed: invariant=" << result.invariant
        << " detail=" << result.detail;
  }
}

// Named regression for the checkpoint-stats bug the chaos search found:
// checkpoint v3 serialized no fabric traffic/fault counters, so a
// resumed run restarted them at zero and the post-resume conservation
// check (sent + duplicated == delivered + dropped + crash_dropped +
// pending) failed whenever faults fired before the checkpoint round.
// Checkpoint v4 carries the counters; this seed fails on the v3
// behavior and must stay green on v4.
TEST(ChaosSeeds, ResumeCarriesFabricStatsAcrossCheckpoint) {
  set_log_level(LogLevel::kError);
  const std::string path =
      std::string(FEDCAV_CHAOS_SEED_DIR) + "/resume_stats_conservation.plan";
  const ChaosPlan plan = load_plan_file(path);
  // The reproducer needs faults before the checkpoint and a resume leg
  // after it — sanity-check the plan still has both ingredients.
  ASSERT_GT(plan.faults.duplicate_prob, 0.0);
  ASSERT_GE(plan.checkpoint_round, 1u);
  ASSERT_LT(plan.checkpoint_round, plan.rounds);

  OracleOptions options;
  options.check_streaming_parity = false;  // isolate the resume leg
  const OracleResult result = run_oracle(plan, options);
  EXPECT_TRUE(result.passed)
      << "v3 checkpoint-stats bug is back: invariant=" << result.invariant
      << " detail=" << result.detail;
  EXPECT_TRUE(result.triggered) << "plan no longer exercises any faults";
}

// Named guard for the sharded round engine (DESIGN.md §15): shards=4
// over a 6-client cohort puts one or two slots in every shard while
// drops, duplicates, corruption, a crash, quorum pressure and the
// straggler filter reshuffle which slots each shard actually folds. The
// oracle's shard_parity check replays the plan forced to shards=1 and
// demands bit-identity (deterministic CSV + final weights) — any
// partial-sum shortcut or per-shard fold reordering in the engine turns
// this red; so does a per-shard accounting ledger that books a dropout
// or straggler against the wrong shard (check_accounting throws, which
// the oracle reports as an "exception" failure).
TEST(ChaosSeeds, ShardedRoundSurvivesFaultsBitIdentically) {
  set_log_level(LogLevel::kError);
  const std::string path =
      std::string(FEDCAV_CHAOS_SEED_DIR) + "/shard_fault_parity.plan";
  const ChaosPlan plan = load_plan_file(path);
  // The reproducer needs a multi-shard round with fault + quorum
  // pressure — sanity-check the ingredients survived any future shrink.
  ASSERT_GE(plan.shards, 2u);
  ASSERT_GT(plan.faults.drop_prob, 0.0);
  ASSERT_GT(plan.straggler_drop_prob, 0.0);
  ASSERT_GE(plan.min_aggregate_clients, 2u);

  OracleOptions options;
  options.check_streaming_parity = false;  // isolate the shard-parity leg
  const OracleResult result = run_oracle(plan, options);
  EXPECT_TRUE(result.passed)
      << "shard parity regressed: invariant=" << result.invariant
      << " detail=" << result.detail;
  EXPECT_TRUE(result.triggered) << "plan no longer exercises any faults";
}

}  // namespace
}  // namespace fedcav::chaos
