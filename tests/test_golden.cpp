// Golden-run regression pins: the fault-free tier-1 configuration
// (digits / lenet5 / fedcav) must land on the committed final-round
// accuracy and loss. The run is deterministic — fixed seeds, static
// parallel_for partitioning, fixed-order reductions — so drift here
// means a behavior change somewhere in the data/model/aggregation
// stack, not noise. Tolerances are tight (1e-6 on accuracy, 1e-4 on
// loss): float math is bit-stable on a given toolchain; the slack only
// absorbs FMA/contract differences across compilers.
#include <gtest/gtest.h>

#include "src/fl/simulation.hpp"
#include "src/utils/logging.hpp"

namespace fedcav {
namespace {

fl::SimulationConfig golden_config() {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "lenet5";
  config.strategy = "fedcav";
  config.train_samples_per_class = 20;
  config.test_samples_per_class = 10;
  config.partition.num_clients = 8;
  config.partition.sigma = 600.0;
  config.server.sample_ratio = 0.5;
  config.server.local.epochs = 3;
  config.server.local.batch_size = 10;
  config.server.local.lr = 0.05f;
  config.seed = 2021;
  return config;
}

TEST(GoldenRun, DigitsLenet5FedcavFinalRoundIsPinned) {
  set_log_level(LogLevel::kError);
  fl::Simulation sim = fl::build_simulation(golden_config());
  sim.server->run(8);
  const metrics::RoundRecord& last = sim.server->history().back();

  // Committed goldens — recalibrate ONLY for an intentional behavior
  // change, and say so in the commit message.
  EXPECT_NEAR(last.test_accuracy, 0.29, 1e-6);
  EXPECT_NEAR(last.test_loss, 2.34066034317016, 1e-4);
  EXPECT_NEAR(sim.server->history().best_accuracy(), 0.29, 1e-6);

  // Structural invariants of a fault-free run: nothing dropped, nothing
  // retried, nothing skipped.
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_EQ(rec.dropouts, 0u);
    EXPECT_EQ(rec.retries, 0u);
    EXPECT_EQ(rec.crc_failures, 0u);
    EXPECT_FALSE(rec.skipped);
  }
}

// The quantized wire (DESIGN.md §13) must not cost meaningful accuracy
// on the golden configuration: error-feedback folds the codec error
// back into the next participation, so the run stays inside a ±0.05
// band around the fp32 golden. The exact values are pinned too — the
// quantized path is as deterministic as the dense one — but only in
// the plain build: sanitizer instrumentation shifts float codegen a
// few ulps and the quantizer's rounding buckets amplify that past the
// exact tolerances (the fp32 golden above is insensitive to it).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kExactQuantPins = false;
#else
constexpr bool kExactQuantPins = true;
#endif
TEST(GoldenRun, Int8ErrorFeedbackStaysInsideGoldenBand) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = golden_config();
  config.server.quant = comm::QuantMode::kInt8;
  config.server.quant_keep = 0.25;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(8);
  const metrics::RoundRecord& last = sim.server->history().back();

  EXPECT_NEAR(last.test_accuracy, 0.29, 0.05)
      << "int8 + top-k + error feedback drifted out of the golden band";
  if (kExactQuantPins) {
    EXPECT_NEAR(last.test_accuracy, 0.28, 1e-6);
    EXPECT_NEAR(last.test_loss, 2.33236902236938, 1e-4);
  }
}

TEST(GoldenRun, Fp16WireStaysInsideGoldenBand) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = golden_config();
  config.server.quant = comm::QuantMode::kFp16;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(8);
  const metrics::RoundRecord& last = sim.server->history().back();

  EXPECT_NEAR(last.test_accuracy, 0.29, 0.05)
      << "fp16 wire drifted out of the golden band";
  if (kExactQuantPins) {
    EXPECT_NEAR(last.test_accuracy, 0.31, 1e-6);
    EXPECT_NEAR(last.test_loss, 2.34580681800842, 1e-4);
  }
}

}  // namespace
}  // namespace fedcav
