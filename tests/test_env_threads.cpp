// FEDCAV_TEST_THREADS / FEDCAV_TEST_SHARDS hooks, compiled into every
// test binary.
//
// When FEDCAV_TEST_THREADS is set to N > 0, a global gtest Environment
// attaches an N-worker kernel ThreadPool before any test runs
// (ops::set_kernel_pool, DESIGN.md §13). The determinism contract says
// every kernel must produce bit-identical results at any worker count,
// so the whole suite — goldens included — must pass unchanged under
// FEDCAV_TEST_THREADS=1 and =4; scripts/check.sh enforces both, and the
// TSan configuration reuses the same hook to race-check the parallel
// kernels.
//
// FEDCAV_TEST_SHARDS=S does the same for the sharded round engine
// (DESIGN.md §15): it raises the process default shard count, so every
// Server round in the suite — goldens and chaos seeds included — runs
// S-sharded. The §15 contract says shard count is invisible to results,
// so the whole suite must pass unchanged under =1 and =4; check.sh
// replays the golden + chaos-seed suites under both.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "src/fl/round_engine.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/threadpool.hpp"

namespace {

class KernelPoolEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const char* value = std::getenv("FEDCAV_TEST_THREADS");
    if (value == nullptr) return;
    const int workers = std::atoi(value);
    if (workers <= 0) return;
    pool_ = std::make_unique<fedcav::ThreadPool>(
        static_cast<std::size_t>(workers));
    fedcav::ops::set_kernel_pool(pool_.get());
    std::printf("[FEDCAV_TEST_THREADS] kernel pool attached: %d worker%s\n",
                workers, workers == 1 ? "" : "s");
  }

  void TearDown() override {
    fedcav::ops::set_kernel_pool(nullptr);
    pool_.reset();
  }

 private:
  std::unique_ptr<fedcav::ThreadPool> pool_;
};

class RoundShardsEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const char* value = std::getenv("FEDCAV_TEST_SHARDS");
    if (value == nullptr) return;
    const int shards = std::atoi(value);
    if (shards <= 0) return;
    fedcav::fl::set_default_round_shards(static_cast<std::size_t>(shards));
    std::printf("[FEDCAV_TEST_SHARDS] round engine default: %d shard%s\n",
                shards, shards == 1 ? "" : "s");
  }

  void TearDown() override { fedcav::fl::set_default_round_shards(0); }
};

// Registration happens at static-init time; gtest owns the Environments.
const ::testing::Environment* const kKernelPoolEnvironment =
    ::testing::AddGlobalTestEnvironment(new KernelPoolEnvironment);
const ::testing::Environment* const kRoundShardsEnvironment =
    ::testing::AddGlobalTestEnvironment(new RoundShardsEnvironment);

}  // namespace
