// FEDCAV_TEST_THREADS hook, compiled into every test binary.
//
// When the environment variable is set to N > 0, a global gtest
// Environment attaches an N-worker kernel ThreadPool before any test
// runs (ops::set_kernel_pool, DESIGN.md §13). The determinism contract
// says every kernel must produce bit-identical results at any worker
// count, so the whole suite — goldens included — must pass unchanged
// under FEDCAV_TEST_THREADS=1 and =4; scripts/check.sh enforces both,
// and the TSan configuration reuses the same hook to race-check the
// parallel kernels.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

#include "src/tensor/parallel.hpp"
#include "src/utils/threadpool.hpp"

namespace {

class KernelPoolEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const char* value = std::getenv("FEDCAV_TEST_THREADS");
    if (value == nullptr) return;
    const int workers = std::atoi(value);
    if (workers <= 0) return;
    pool_ = std::make_unique<fedcav::ThreadPool>(
        static_cast<std::size_t>(workers));
    fedcav::ops::set_kernel_pool(pool_.get());
    std::printf("[FEDCAV_TEST_THREADS] kernel pool attached: %d worker%s\n",
                workers, workers == 1 ? "" : "s");
  }

  void TearDown() override {
    fedcav::ops::set_kernel_pool(nullptr);
    pool_.reset();
  }

 private:
  std::unique_ptr<fedcav::ThreadPool> pool_;
};

// Registration happens at static-init time; gtest owns the Environment.
const ::testing::Environment* const kKernelPoolEnvironment =
    ::testing::AddGlobalTestEnvironment(new KernelPoolEnvironment);

}  // namespace
