// Allocation regression test: after one warm-up batch, a train step must
// perform ZERO Tensor heap allocations. This is the enforcement side of
// the workspace policy (DESIGN.md §8): every layer draws hot-path buffers
// from persistent grow-only slots, the loss caches through capacity-
// reusing assignment, and the optimizer updates in place.
//
// Counting happens inside Tensor's single allocation choke point, gated
// by the FEDCAV_ALLOC_STATS compile option (ON by default); under a build
// with the option off the tests skip.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/fl/simulation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/zoo.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav {
namespace {

std::vector<std::size_t> cycling_labels(std::size_t batch) {
  std::vector<std::size_t> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = i % nn::kNumClasses;
  return labels;
}

void expect_steady_state_alloc_free(const char* builder_name, const Shape& input_shape) {
  Rng rng(0x57a7);
  auto model = nn::model_builder(builder_name)(rng);
  nn::Sgd opt(nn::SgdConfig{/*lr=*/0.01f, /*momentum=*/0.9f});
  const Tensor input = Tensor::uniform(input_shape, rng, -1.0f, 1.0f);
  const std::vector<std::size_t> labels = cycling_labels(input_shape[0]);

  // Warm-up batch: grows every workspace slot, cache, packed panel and
  // optimizer velocity buffer to steady-state capacity.
  model->forward_backward(input, labels);
  opt.step(*model);

  Tensor::reset_alloc_stats();
  for (int step = 0; step < 3; ++step) {
    model->forward_backward(input, labels);
    opt.step(*model);
  }
  const TensorAllocStats stats = Tensor::alloc_stats();
  EXPECT_EQ(stats.allocations, 0u)
      << builder_name << ": " << stats.allocations << " tensor allocations ("
      << stats.bytes << " bytes) in 3 steady-state train steps";
}

TEST(AllocStats, LeNetTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "lenet5", Shape::of(10, nn::kGrayChannels, nn::kGraySide, nn::kGraySide));
}

TEST(AllocStats, Cnn9TrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "cnn9", Shape::of(10, nn::kGrayChannels, nn::kGraySide, nn::kGraySide));
}

TEST(AllocStats, ResNetTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "resnet", Shape::of(10, nn::kColorChannels, nn::kColorSide, nn::kColorSide));
}

TEST(AllocStats, MlpTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free("mlp",
                                 Shape::of(10, nn::kGraySide * nn::kGraySide));
}

// The counter itself: constructing a Tensor allocates once, capacity
// reuse allocates zero times.
TEST(AllocStats, CounterSeesAllocationsAndCapacityReuse) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  Tensor::reset_alloc_stats();
  Tensor t(Shape::of(8, 8));
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(4, 4));  // shrinking reuses the buffer
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(8, 8));  // back within capacity
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(16, 16));  // genuine growth
  EXPECT_EQ(Tensor::alloc_stats().allocations, 2u);
}

// live_bytes follows tensor lifetimes, peak_live_bytes is a high-water
// mark, and reset re-arms the peak at the current live level rather than
// zero (so long-lived buffers stay visible to the next measurement).
TEST(AllocStats, LiveAndPeakTrackTensorLifetimes) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  const std::uint64_t base_live = Tensor::alloc_stats().live_bytes;
  constexpr std::uint64_t kBytes = 16ull * 16ull * sizeof(float);
  {
    Tensor t(Shape::of(16, 16));
    const TensorAllocStats during = Tensor::alloc_stats();
    EXPECT_EQ(during.live_bytes, base_live + kBytes);
    EXPECT_GE(during.peak_live_bytes, during.live_bytes);
  }
  EXPECT_EQ(Tensor::alloc_stats().live_bytes, base_live);

  Tensor::reset_alloc_stats();
  const TensorAllocStats armed = Tensor::alloc_stats();
  EXPECT_EQ(armed.peak_live_bytes, armed.live_bytes)
      << "reset must re-arm the peak at the current live level";
}

// The tentpole guarantee: a round's peak live tensor bytes is bounded by
// the replica pool (K ~ thread-pool size), NOT the cohort size. 512
// clients must not peak meaningfully above 128 clients on the same pool.
TEST(AllocStats, RoundPeakLiveBytesIndependentOfCohortSize) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";

  const auto peak_for = [](std::size_t clients) -> std::uint64_t {
    fl::SimulationConfig cfg;
    cfg.dataset = "digits";
    cfg.model = "mlp";
    cfg.strategy = "fedcav";
    cfg.train_samples_per_class = 64;  // 640 samples >= 512 clients
    cfg.test_samples_per_class = 4;
    cfg.partition.scheme = data::PartitionScheme::kIidBalanced;
    cfg.partition.num_clients = clients;
    cfg.server.sample_ratio = 1.0;  // whole cohort participates
    cfg.server.local.epochs = 1;
    cfg.server.local.batch_size = 4;
    cfg.server.use_network = false;
    fl::Simulation sim = fl::build_simulation(cfg);
    ThreadPool pool(2);
    sim.server->set_thread_pool(&pool);
    Tensor::reset_alloc_stats();
    sim.server->run_round();
    return Tensor::alloc_stats().peak_live_bytes;
  };

  const std::uint64_t small = peak_for(128);
  const std::uint64_t large = peak_for(512);
  EXPECT_LT(large, small + small / 2)
      << "4x the cohort grew peak live bytes from " << small << " to " << large
      << " — per-client replicas leaked back in";
}

}  // namespace
}  // namespace fedcav
