// Allocation regression test: after one warm-up batch, a train step must
// perform ZERO Tensor heap allocations. This is the enforcement side of
// the workspace policy (DESIGN.md §8): every layer draws hot-path buffers
// from persistent grow-only slots, the loss caches through capacity-
// reusing assignment, and the optimizer updates in place.
//
// Counting happens inside Tensor's single allocation choke point, gated
// by the FEDCAV_ALLOC_STATS compile option (ON by default); under a build
// with the option off the tests skip.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/nn/optimizer.hpp"
#include "src/nn/zoo.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"

namespace fedcav {
namespace {

std::vector<std::size_t> cycling_labels(std::size_t batch) {
  std::vector<std::size_t> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = i % nn::kNumClasses;
  return labels;
}

void expect_steady_state_alloc_free(const char* builder_name, const Shape& input_shape) {
  Rng rng(0x57a7);
  auto model = nn::model_builder(builder_name)(rng);
  nn::Sgd opt(nn::SgdConfig{/*lr=*/0.01f, /*momentum=*/0.9f});
  const Tensor input = Tensor::uniform(input_shape, rng, -1.0f, 1.0f);
  const std::vector<std::size_t> labels = cycling_labels(input_shape[0]);

  // Warm-up batch: grows every workspace slot, cache, packed panel and
  // optimizer velocity buffer to steady-state capacity.
  model->forward_backward(input, labels);
  opt.step(*model);

  Tensor::reset_alloc_stats();
  for (int step = 0; step < 3; ++step) {
    model->forward_backward(input, labels);
    opt.step(*model);
  }
  const TensorAllocStats stats = Tensor::alloc_stats();
  EXPECT_EQ(stats.allocations, 0u)
      << builder_name << ": " << stats.allocations << " tensor allocations ("
      << stats.bytes << " bytes) in 3 steady-state train steps";
}

TEST(AllocStats, LeNetTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "lenet5", Shape::of(10, nn::kGrayChannels, nn::kGraySide, nn::kGraySide));
}

TEST(AllocStats, Cnn9TrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "cnn9", Shape::of(10, nn::kGrayChannels, nn::kGraySide, nn::kGraySide));
}

TEST(AllocStats, ResNetTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free(
      "resnet", Shape::of(10, nn::kColorChannels, nn::kColorSide, nn::kColorSide));
}

TEST(AllocStats, MlpTrainStepIsAllocationFreeAfterWarmup) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  expect_steady_state_alloc_free("mlp",
                                 Shape::of(10, nn::kGraySide * nn::kGraySide));
}

// The counter itself: constructing a Tensor allocates once, capacity
// reuse allocates zero times.
TEST(AllocStats, CounterSeesAllocationsAndCapacityReuse) {
  if (!Tensor::alloc_stats_enabled()) GTEST_SKIP() << "built without FEDCAV_ALLOC_STATS";
  Tensor::reset_alloc_stats();
  Tensor t(Shape::of(8, 8));
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(4, 4));  // shrinking reuses the buffer
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(8, 8));  // back within capacity
  EXPECT_EQ(Tensor::alloc_stats().allocations, 1u);
  t.resize_uninitialized(Shape::of(16, 16));  // genuine growth
  EXPECT_EQ(Tensor::alloc_stats().allocations, 2u);
}

}  // namespace
}  // namespace fedcav
