// Lightweight property-test harness over fedcav::Rng (the RapidCheck
// idiom without the dependency): run a property body against many
// generated cases, derive every case's seed deterministically, and on
// failure report the exact environment variables that replay just the
// failing case.
//
//   FEDCAV_PROP_CASES=5000  — override the per-property case count
//   FEDCAV_PROP_SEED=12345  — pin the root seed (failure replay)
//
// Usage:
//   FEDCAV_PROPERTY("envelope round-trip", 1000, [&](Rng& rng) {
//     const auto env = gen_envelope(rng);
//     EXPECT_EQ(decode(encode(env)), env);
//   });
//
// The body runs once per case with an Rng seeded splitmix64(root + i).
// Any gtest failure inside the body aborts the sweep and appends a
// one-line replay recipe, so a red CI log always names the seed.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/utils/rng.hpp"

namespace fedcav::proptest {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Per-property case count: the property's own default unless
/// FEDCAV_PROP_CASES overrides it globally.
inline std::uint64_t property_cases(std::uint64_t default_cases) {
  return env_u64("FEDCAV_PROP_CASES", default_cases);
}

/// Root seed for the sweep; case i uses splitmix64(root + i).
inline std::uint64_t property_seed() {
  return env_u64("FEDCAV_PROP_SEED", 0x5eedf00dULL);
}

template <typename Body>
void check_property(const char* name, std::uint64_t default_cases, Body&& body) {
  const std::uint64_t cases = property_cases(default_cases);
  const std::uint64_t root = property_seed();
  for (std::uint64_t i = 0; i < cases; ++i) {
    std::uint64_t derive = root + i;
    Rng rng(splitmix64(derive));
    body(rng);
    if (::testing::Test::HasFailure()) {
      GTEST_FAIL() << "property '" << name << "' failed on case " << i << "/"
                   << cases << "; replay with FEDCAV_PROP_SEED=" << (root + i)
                   << " FEDCAV_PROP_CASES=1";
      return;
    }
  }
}

// --- small generator combinators ------------------------------------

/// Length-biased byte buffer: usually short, occasionally near `max`.
inline std::vector<std::uint8_t> gen_bytes(Rng& rng, std::size_t max) {
  const std::size_t n = rng.bernoulli(0.1)
                            ? max - static_cast<std::size_t>(rng.uniform_int(
                                        std::uint64_t{1} + max / 8))
                            : static_cast<std::size_t>(rng.uniform_int(max + 1));
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  return out;
}

/// Float vector with magnitudes spanning subnormal to large, plus
/// exact zeros (aggregation algebra must hold across the range).
inline std::vector<float> gen_floats(Rng& rng, std::size_t max_len) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(max_len + 1));
  std::vector<float> out(n);
  for (auto& v : out) {
    switch (rng.uniform_int(std::uint64_t{4})) {
      case 0: v = 0.0f; break;
      case 1: v = rng.uniform_f(-1.0f, 1.0f); break;
      case 2: v = rng.uniform_f(-1e6f, 1e6f); break;
      default: v = rng.uniform_f(-1e-6f, 1e-6f); break;
    }
  }
  return out;
}

}  // namespace fedcav::proptest

/// Sugar: FEDCAV_PROPERTY("name", cases, [&](Rng& rng) { ... });
#define FEDCAV_PROPERTY(name, default_cases, ...) \
  ::fedcav::proptest::check_property((name), (default_cases), __VA_ARGS__)
