// Property suite for aggregation algebra, top-k sparsification, and the
// fabric's state serialization. Mass-generated cases (tests/property.hpp;
// FEDCAV_PROP_CASES / FEDCAV_PROP_SEED) pin:
//   * streaming (incremental) aggregation is bit-identical to one-shot
//     aggregate() for every strategy and every random cohort;
//   * aggregation weights form a convex combination and are invariant
//     to uniform sample-count scaling;
//   * top-k compression round-trips, ties break deterministically to
//     the lowest index, and add_sparse matches dense reconstruction;
//   * InMemoryNetwork::save_state/load_state round-trips in-flight
//     traffic AND the traffic/fault accounting (the checkpoint-v4
//     regression surface).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/comm/compression.hpp"
#include "src/comm/network.hpp"
#include "src/fl/strategy.hpp"
#include "property.hpp"

namespace fedcav {
namespace {

using proptest::gen_floats;

const char* kStrategies[] = {"fedavg", "fedprox", "fedcav", "fedcav-noclip",
                             "median"};

fl::ClientUpdate gen_update(Rng& rng, std::size_t id, std::size_t dim) {
  fl::ClientUpdate u;
  u.client_id = id;
  u.num_samples = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{200}));
  u.inference_loss = rng.uniform(0.01, 10.0);
  u.weights.resize(dim);
  for (auto& w : u.weights) w = rng.uniform_f(-2.0f, 2.0f);
  return u;
}

std::vector<fl::ClientUpdate> gen_cohort(Rng& rng, std::size_t n, std::size_t dim) {
  std::vector<fl::ClientUpdate> cohort;
  cohort.reserve(n);
  for (std::size_t i = 0; i < n; ++i) cohort.push_back(gen_update(rng, i, dim));
  return cohort;
}

std::vector<fl::ClientUpdate> scalars_only(const std::vector<fl::ClientUpdate>& updates) {
  std::vector<fl::ClientUpdate> meta = updates;
  for (auto& m : meta) m.weights.clear();
  return meta;
}

bool bits_equal(const nn::Weights& a, const nn::Weights& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

TEST(PropertyAgg, IncrementalMatchesOneShotBitwise) {
  FEDCAV_PROPERTY("incremental == one-shot", 1000, [](Rng& rng) {
    const std::size_t dim = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{24}));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{6}));
    const char* name = kStrategies[rng.uniform_int(std::uint64_t{5})];
    std::vector<float> global(dim);
    for (auto& v : global) v = rng.uniform_f(-1.0f, 1.0f);
    const std::vector<fl::ClientUpdate> updates = gen_cohort(rng, n, dim);

    auto one_shot = fl::make_strategy(name);
    auto incremental = fl::make_strategy(name);
    const nn::Weights direct = one_shot->aggregate(global, updates);
    incremental->begin_aggregation(global, scalars_only(updates));
    for (const auto& u : updates) incremental->accumulate(u);
    const nn::Weights streamed = incremental->finish_aggregation();
    EXPECT_TRUE(bits_equal(direct, streamed)) << "strategy " << name;
  });
}

TEST(PropertyAgg, AggregationWeightsAreConvexAndScaleInvariant) {
  FEDCAV_PROPERTY("gamma convex + scale-invariant", 1000, [](Rng& rng) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{6}));
    // FedProx/median delegate to sample-count weights too; FedCav's γ
    // mixes in the inference losses. All must be a convex combination.
    const char* name = kStrategies[rng.uniform_int(std::uint64_t{5})];
    const std::vector<fl::ClientUpdate> updates = gen_cohort(rng, n, 4);
    const auto strategy = fl::make_strategy(name);
    const std::vector<double> gamma = strategy->aggregation_weights(updates);
    ASSERT_EQ(gamma.size(), updates.size());
    double sum = 0.0;
    for (double g : gamma) {
      EXPECT_GE(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Scaling every sample count by the same factor must not move γ.
    std::vector<fl::ClientUpdate> scaled = updates;
    const std::size_t factor = 2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{8}));
    for (auto& u : scaled) u.num_samples *= factor;
    const std::vector<double> gamma2 = strategy->aggregation_weights(scaled);
    for (std::size_t i = 0; i < gamma.size(); ++i) {
      EXPECT_NEAR(gamma[i], gamma2[i], 1e-9) << "strategy " << name;
    }
  });
}

TEST(PropertyAgg, TopKRoundTripAndDeterministicTieBreak) {
  FEDCAV_PROPERTY("top-k compress", 1000, [](Rng& rng) {
    const std::size_t dim = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{63}));
    // Draw magnitudes from a tiny value set so ties are the common
    // case, not a corner case.
    std::vector<float> dense(dim);
    const float mags[] = {0.0f, 0.25f, 0.25f, 1.0f, 2.0f};
    for (auto& v : dense) {
      v = mags[rng.uniform_int(std::uint64_t{5})] * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    }
    const double ratio = rng.uniform(0.01, 1.0);
    const comm::SparseDelta sparse = comm::topk_compress(dense, ratio);

    // Reference selection: stable order by (|v| desc, index asc).
    std::vector<std::uint32_t> order(dim);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      const float ma = std::abs(dense[a]);
      const float mb = std::abs(dense[b]);
      if (ma != mb) return ma > mb;
      return a < b;
    });
    order.resize(sparse.indices.size());
    std::sort(order.begin(), order.end());
    ASSERT_EQ(sparse.indices, order) << "tie-break must pick the lowest index";

    for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
      EXPECT_EQ(sparse.values[i], dense[sparse.indices[i]]);
    }

    // Wire round-trip, exact size, and dense/add_sparse agreement.
    const ByteBuffer wire = sparse.encode();
    EXPECT_EQ(wire.size(), sparse.wire_size());
    ByteReader reader(wire);
    const comm::SparseDelta decoded = comm::SparseDelta::decode(reader);
    EXPECT_EQ(decoded.dim, sparse.dim);
    EXPECT_EQ(decoded.indices, sparse.indices);
    EXPECT_EQ(decoded.values, sparse.values);

    const std::vector<float> dense_out = comm::decompress(sparse);
    std::vector<float> accum(dim, 0.0f);
    comm::add_sparse(accum, sparse);
    EXPECT_EQ(dense_out, accum);
    if (ratio == 1.0) EXPECT_EQ(dense_out, dense);
  });
}

TEST(PropertyAgg, FullRatioCompressionIsLossless) {
  FEDCAV_PROPERTY("ratio-1 lossless", 1000, [](Rng& rng) {
    std::vector<float> dense = gen_floats(rng, 48);
    if (dense.empty()) dense.push_back(rng.uniform_f(-1.0f, 1.0f));
    EXPECT_EQ(comm::decompress(comm::topk_compress(dense, 1.0)), dense);
  });
}

TEST(PropertyAgg, NetworkStateRoundTripPreservesTrafficAndFaultAccounting) {
  FEDCAV_PROPERTY("fabric state round-trip", 300, [](Rng& rng) {
    comm::NetworkConfig config;
    config.num_endpoints = 2 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3}));
    config.faults.seed = rng.next_u64();
    config.faults.drop_prob = rng.uniform(0.0, 0.5);
    config.faults.duplicate_prob = rng.uniform(0.0, 0.5);
    config.faults.corrupt_prob = rng.uniform(0.0, 0.3);
    config.faults.jitter_s = rng.uniform(0.0, 0.05);
    comm::InMemoryNetwork net(config);
    net.begin_round(1);

    // Random traffic, partially drained, so in-flight messages and
    // nonzero counters both survive into the snapshot.
    const std::size_t sends = 1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{20}));
    for (std::size_t i = 0; i < sends; ++i) {
      const auto src = static_cast<std::size_t>(rng.uniform_int(config.num_endpoints));
      auto dst = static_cast<std::size_t>(rng.uniform_int(config.num_endpoints));
      if (dst == src) dst = (dst + 1) % config.num_endpoints;
      comm::Envelope env;
      env.type = comm::MessageType::kControl;
      env.payload = proptest::gen_bytes(rng, 32);
      net.send(src, dst, env);
      if (rng.bernoulli(0.4)) (void)net.try_recv_wire(dst, src);
    }

    ByteBuffer snapshot;
    net.save_state(snapshot);
    comm::InMemoryNetwork restored(config);
    ByteReader reader(snapshot);
    restored.load_state(reader);
    EXPECT_TRUE(reader.exhausted());

    EXPECT_EQ(restored.pending_messages(), net.pending_messages());
    const comm::TrafficStats a = net.total_stats();
    const comm::TrafficStats b = restored.total_stats();
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
    const comm::FaultStats fa = net.fault_stats();
    const comm::FaultStats fb = restored.fault_stats();
    EXPECT_EQ(fa.dropped, fb.dropped);
    EXPECT_EQ(fa.duplicated, fb.duplicated);
    EXPECT_EQ(fa.corrupted, fb.corrupted);
    EXPECT_EQ(fa.delivered, fb.delivered);
    EXPECT_EQ(fa.jitter_seconds, fb.jitter_seconds);

    // The restored fabric must drain byte-identically to the original.
    for (std::size_t dst = 0; dst < config.num_endpoints; ++dst) {
      for (std::size_t src = 0; src < config.num_endpoints; ++src) {
        while (true) {
          const auto expect = net.try_recv_wire(dst, src);
          const auto got = restored.try_recv_wire(dst, src);
          ASSERT_EQ(expect.has_value(), got.has_value());
          if (!expect.has_value()) break;
          EXPECT_EQ(*expect, *got);
        }
      }
    }
  });
}

}  // namespace
}  // namespace fedcav
