// Unit + property tests for the stream transport layer (DESIGN.md
// §14/§16): length-prefixed framing with the reject-before-allocate
// hostile-length gate, the HELLO/ACCEPT handshake (version negotiation,
// constant-time auth, rank assignment, reject statuses), and the
// SocketTransport/TcpTransport contract — including the ascending-rank
// try_recv_any_wire order it shares with InMemoryNetwork and the
// peer_closed() drain semantics the daemon's dropout accounting rides
// on. The version-skew tests drive both backends through the
// proto_*_override knobs to simulate mixed builds.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/comm/frame.hpp"
#include "src/comm/message.hpp"
#include "src/comm/socket_transport.hpp"
#include "src/comm/tcp_transport.hpp"
#include "src/utils/error.hpp"
#include "tests/property.hpp"

namespace fedcav::comm {
namespace {

Envelope control_envelope(std::uint64_t round) {
  ControlMsg msg;
  msg.round = round;
  return Envelope{MessageType::kControl, msg.encode()};
}

// --------------------------------------------------------- FrameDecoder

TEST(FrameDecoder, RoundTripsMultipleFrames) {
  ByteBuffer stream;
  append_frame(stream, control_envelope(1).encode());
  append_frame(stream, control_envelope(2).encode());
  append_frame(stream, control_envelope(3).encode());

  FrameDecoder decoder(1 << 20);
  ASSERT_TRUE(decoder.push(stream.data(), stream.size()));
  for (std::uint64_t round = 1; round <= 3; ++round) {
    const std::optional<ByteBuffer> frame = decoder.next_frame();
    ASSERT_TRUE(frame.has_value());
    const Envelope env = Envelope::decode(*frame);
    ByteReader reader(env.payload);
    EXPECT_EQ(ControlMsg::decode(reader).round, round);
  }
  EXPECT_FALSE(decoder.has_frame());
  EXPECT_FALSE(decoder.failed());
}

TEST(FrameDecoder, HandlesByteAtATimeDelivery) {
  // Partial reads are the norm on a stream socket: the 4-byte header
  // and the payload may straddle any number of read() calls.
  ByteBuffer stream;
  append_frame(stream, control_envelope(7).encode());
  FrameDecoder decoder(1 << 20);
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(decoder.push(&byte, 1));
  }
  const std::optional<ByteBuffer> frame = decoder.next_frame();
  ASSERT_TRUE(frame.has_value());
  const Envelope env = Envelope::decode(*frame);
  ByteReader reader(env.payload);
  EXPECT_EQ(ControlMsg::decode(reader).round, 7u);
}

TEST(FrameDecoder, RejectsZeroLengthPrefix) {
  FrameDecoder decoder(1 << 20);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_FALSE(decoder.push(zero, sizeof(zero)));
  EXPECT_TRUE(decoder.failed());
  EXPECT_FALSE(decoder.has_frame());
}

TEST(FrameDecoder, RejectsOversizedPrefixBeforePayload) {
  // A hostile 4 GiB announcement must fail at the header — the decoder
  // never sizes a payload buffer from an unvalidated length.
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(decoder.push(huge, sizeof(huge)));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("4294967295"), std::string::npos);
  // The failed state is terminal: even well-formed input is discarded.
  ByteBuffer good;
  append_frame(good, control_envelope(1).encode());
  EXPECT_FALSE(decoder.push(good.data(), good.size()));
  EXPECT_FALSE(decoder.has_frame());
}

TEST(FrameDecoder, BoundaryLengthIsAccepted) {
  ByteBuffer payload(64, 0xab);
  ByteBuffer stream;
  append_frame(stream, payload);
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  ASSERT_TRUE(decoder.push(stream.data(), stream.size()));
  const std::optional<ByteBuffer> frame = decoder.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, payload);
}

TEST(FrameDecoderProperty, SplitInvariantRoundTrip) {
  // Any chunking of the same byte stream yields the same frames — the
  // decoder's state machine cannot depend on read() boundaries.
  proptest::check_property("frame split invariance", 200, [&](Rng& rng) {
    const std::size_t num_frames = 1 + rng.uniform_int(5);
    std::vector<ByteBuffer> payloads;
    ByteBuffer stream;
    for (std::size_t i = 0; i < num_frames; ++i) {
      ByteBuffer payload(1 + rng.uniform_int(300), 0);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(256));
      append_frame(stream, payload);
      payloads.push_back(std::move(payload));
    }
    FrameDecoder decoder(1 << 20);
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.uniform_int(64), stream.size() - pos);
      ASSERT_TRUE(decoder.push(stream.data() + pos, chunk));
      pos += chunk;
    }
    for (const ByteBuffer& expected : payloads) {
      const std::optional<ByteBuffer> frame = decoder.next_frame();
      ASSERT_TRUE(frame.has_value());
      EXPECT_EQ(*frame, expected);
    }
    EXPECT_FALSE(decoder.has_frame());
  });
}

TEST(FrameDecoderProperty, AdversarialPrefixNeverOverAllocates) {
  // Satellite 2: random streams of valid frames with a hostile length
  // prefix spliced in. Frames before the bad prefix decode normally;
  // the bad prefix itself must flip the decoder into the terminal
  // failed state without ever producing an oversized frame.
  constexpr std::size_t kMax = 4096;
  proptest::check_property("hostile prefix", 300, [&](Rng& rng) {
    ByteBuffer stream;
    const std::size_t good_before = rng.uniform_int(3);
    for (std::size_t i = 0; i < good_before; ++i) {
      append_frame(stream, ByteBuffer(1 + rng.uniform_int(64), 0x5a));
    }
    // Hostile prefix: 0, or anything above kMax (up to 0xffffffff).
    const std::uint32_t announced =
        rng.uniform_int(2) == 0
            ? 0
            : static_cast<std::uint32_t>(
                  kMax + 1 +
                  rng.uniform_int(0xffffffffULL - static_cast<std::uint64_t>(kMax) - 1));
    for (int b = 0; b < 4; ++b) {
      stream.push_back(static_cast<std::uint8_t>(announced >> (8 * b)));
    }
    // Garbage after the bad prefix must also be discarded.
    const std::size_t garbage = rng.uniform_int(32);
    for (std::size_t i = 0; i < garbage; ++i) {
      stream.push_back(static_cast<std::uint8_t>(rng.uniform_int(256)));
    }

    FrameDecoder decoder(kMax);
    (void)decoder.push(stream.data(), stream.size());
    EXPECT_TRUE(decoder.failed());
    std::size_t frames = 0;
    while (auto frame = decoder.next_frame()) {
      EXPECT_LE(frame->size(), kMax);
      frames += 1;
    }
    EXPECT_EQ(frames, good_before);
  });
}

// ----------------------------------------------------------- handshake

TEST(Handshake, HelloRoundTrip) {
  HelloMsg msg;
  msg.proto_min = 1;
  msg.proto_max = 3;
  msg.requested_rank = 7;
  msg.auth_token = encode_auth_token("s3cret");
  const ByteBuffer wire = msg.encode();
  EXPECT_EQ(wire.size(), kHelloBytes);
  const std::optional<HelloMsg> back = HelloMsg::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->proto_min, 1u);
  EXPECT_EQ(back->proto_max, 3u);
  EXPECT_EQ(back->requested_rank, 7u);
  EXPECT_TRUE(auth_tokens_equal(back->auth_token, encode_auth_token("s3cret")));
  EXPECT_FALSE(auth_tokens_equal(back->auth_token, encode_auth_token("wrong")));
}

TEST(Handshake, AuthTokenEncodingIsBoundedAndPadded) {
  // The empty token is all zeroes (the "no auth" default both sides
  // share), exactly kAuthTokenBytes fits, one byte more throws — silent
  // truncation would make two distinct secrets compare equal.
  EXPECT_TRUE(auth_tokens_equal(encode_auth_token(""),
                                std::array<std::uint8_t, kAuthTokenBytes>{}));
  EXPECT_NO_THROW(encode_auth_token(std::string(kAuthTokenBytes, 'x')));
  EXPECT_THROW(encode_auth_token(std::string(kAuthTokenBytes + 1, 'x')), Error);
  // Padding is part of the comparison: a prefix is not a match.
  EXPECT_FALSE(auth_tokens_equal(encode_auth_token("abc"),
                                 encode_auth_token("abcd")));
}

TEST(Handshake, AcceptRoundTrip) {
  AcceptMsg msg;
  msg.status = HandshakeStatus::kRankUnavailable;
  msg.proto = 2;
  msg.rank = 3;
  msg.num_endpoints = 5;
  const std::optional<AcceptMsg> back = AcceptMsg::decode(msg.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, HandshakeStatus::kRankUnavailable);
  EXPECT_EQ(back->proto, 2u);
  EXPECT_EQ(back->rank, 3u);
  EXPECT_EQ(back->num_endpoints, 5u);
}

TEST(Handshake, RejectsBadMagicAndShortBuffers) {
  ByteBuffer wire = HelloMsg{}.encode();
  wire[0] ^= 0x01;
  EXPECT_FALSE(HelloMsg::decode(wire).has_value());
  EXPECT_FALSE(HelloMsg::decode(ByteBuffer(kHelloBytes - 1, 0)).has_value());
  EXPECT_FALSE(AcceptMsg::decode(HelloMsg{}.encode()).has_value());  // wrong magic
}

TEST(Handshake, RejectsInvertedVersionRange) {
  HelloMsg msg;
  msg.proto_min = 5;
  msg.proto_max = 2;
  EXPECT_FALSE(HelloMsg::decode(msg.encode()).has_value());
}

// ------------------------------------------------------ SocketTransport

std::string temp_socket_path(const char* name) {
  char dir[] = "/tmp/fedcavXXXXXX";
  const char* made = ::mkdtemp(dir);
  EXPECT_NE(made, nullptr);
  return std::string(dir) + "/" + name;
}

TEST(SocketTransport, HandshakeAssignsSequentialRanks) {
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> w1, w2;
  std::thread workers([&] {
    w1 = SocketTransport::connect(path, kAnyRank, {});
    w2 = SocketTransport::connect(path, kAnyRank, {});
  });
  auto daemon = SocketTransport::serve(path, 2, {});
  workers.join();
  EXPECT_EQ(daemon->local_rank(), 0u);
  EXPECT_EQ(daemon->num_endpoints(), 3u);
  EXPECT_EQ(w1->local_rank(), 1u);
  EXPECT_EQ(w2->local_rank(), 2u);
  EXPECT_EQ(w1->num_endpoints(), 3u);
  EXPECT_EQ(w1->protocol_version(), kProtocolVersion);
}

TEST(SocketTransport, HonorsRequestedRankAndFillsGaps) {
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> w1, w2;
  std::thread workers([&] {
    w1 = SocketTransport::connect(path, 2, {});        // explicit rank 2
    w2 = SocketTransport::connect(path, kAnyRank, {});  // lowest free = 1
  });
  auto daemon = SocketTransport::serve(path, 2, {});
  workers.join();
  EXPECT_EQ(w1->local_rank(), 2u);
  EXPECT_EQ(w2->local_rank(), 1u);
}

TEST(SocketTransport, RejectsUnavailableRank) {
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> ok;
  std::thread workers([&] {
    // Rank 0 is the daemon itself — never grantable to a worker.
    EXPECT_THROW(SocketTransport::connect(path, 0, {}), Error);
    ok = SocketTransport::connect(path, 1, {});
  });
  auto daemon = SocketTransport::serve(path, 1, {});
  workers.join();
  EXPECT_EQ(ok->local_rank(), 1u);
}

/// Raw-socket HELLO exchange: send `hello` bytes, return the ACCEPT.
AcceptMsg raw_handshake(const std::string& path, const ByteBuffer& hello) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // Retry until the daemon binds (the serve side starts concurrently).
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    usleep(10000);
  }
  EXPECT_EQ(write_all(fd, hello.data(), hello.size()), IoStatus::kOk);
  ByteBuffer reply(kAcceptBytes);
  EXPECT_EQ(read_exact(fd, reply.data(), reply.size(), 10.0), IoStatus::kOk);
  ::close(fd);
  const std::optional<AcceptMsg> accept = AcceptMsg::decode(reply);
  EXPECT_TRUE(accept.has_value());
  return accept.value_or(AcceptMsg{});
}

TEST(SocketTransport, RejectsVersionMismatchThenAcceptsValidWorker) {
  const std::string path = temp_socket_path("fed.sock");
  AcceptMsg rejected;
  std::unique_ptr<SocketTransport> ok;
  std::thread workers([&] {
    HelloMsg future;
    future.proto_min = kProtocolVersion + 7;
    future.proto_max = kProtocolVersion + 9;
    rejected = raw_handshake(path, future.encode());
    ok = SocketTransport::connect(path, kAnyRank, {});
  });
  auto daemon = SocketTransport::serve(path, 1, {});
  workers.join();
  EXPECT_EQ(rejected.status, HandshakeStatus::kVersionMismatch);
  // The rejected connection consumed no rank and leaked no slot.
  EXPECT_EQ(ok->local_rank(), 1u);
}

TEST(SocketTransport, RejectsGarbageHelloAsMalformed) {
  const std::string path = temp_socket_path("fed.sock");
  AcceptMsg rejected;
  std::unique_ptr<SocketTransport> ok;
  std::thread workers([&] {
    rejected = raw_handshake(path, ByteBuffer(kHelloBytes, 0x42));
    ok = SocketTransport::connect(path, kAnyRank, {});
  });
  auto daemon = SocketTransport::serve(path, 1, {});
  workers.join();
  EXPECT_EQ(rejected.status, HandshakeStatus::kMalformedHello);
  EXPECT_EQ(ok->local_rank(), 1u);
}

TEST(SocketTransport, EnvelopeRoundTripBothDirections) {
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> worker;
  std::thread thread([&] { worker = SocketTransport::connect(path, kAnyRank, {}); });
  auto daemon = SocketTransport::serve(path, 1, {});
  thread.join();

  daemon->send(0, 1, control_envelope(5));
  std::optional<ByteBuffer> wire;
  while (!(wire = worker->try_recv_wire(1, 0)).has_value()) worker->poll(0.05);
  const Envelope down_env = Envelope::decode(*wire);
  ByteReader down(down_env.payload);
  EXPECT_EQ(ControlMsg::decode(down).round, 5u);

  worker->send(1, 0, control_envelope(6));
  std::size_t src = 99;
  while (!(wire = daemon->try_recv_any_wire(0, &src)).has_value()) daemon->poll(0.05);
  EXPECT_EQ(src, 1u);
  const Envelope up_env = Envelope::decode(*wire);
  ByteReader up(up_env.payload);
  EXPECT_EQ(ControlMsg::decode(up).round, 6u);

  // Byte metering matches the in-memory rule: the Envelope image only,
  // never the 4-byte length prefix.
  EXPECT_EQ(daemon->stats(0).bytes_sent, control_envelope(5).wire_size());
  EXPECT_EQ(daemon->stats(1).bytes_sent, control_envelope(6).wire_size());
}

TEST(SocketTransport, RecvAnyDrainsLowestRankFirst) {
  // The same fairness contract InMemoryNetwork pins (test_comm.cpp):
  // with frames queued from both workers, rank 1 drains first even
  // though rank 2's arrived first.
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> w1, w2;
  std::thread workers([&] {
    w1 = SocketTransport::connect(path, 1, {});
    w2 = SocketTransport::connect(path, 2, {});
  });
  auto daemon = SocketTransport::serve(path, 2, {});
  workers.join();

  w2->send(2, 0, control_envelope(22));
  // Wait until rank 2's frame is queued before rank 1 even sends.
  while (daemon->pending_messages() < 1) daemon->poll(0.05);
  w1->send(1, 0, control_envelope(11));
  while (daemon->pending_messages() < 2) daemon->poll(0.05);

  std::size_t src = 99;
  std::optional<ByteBuffer> wire = daemon->try_recv_any_wire(0, &src);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(src, 1u);
  wire = daemon->try_recv_any_wire(0, &src);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(src, 2u);
}

TEST(SocketTransport, PeerClosedOnlyAfterQueueDrained) {
  // Satellite 3: a worker that dies after sending must not lose the
  // bytes that already arrived — peer_closed() holds off until the
  // queue is empty, then the daemon books the dropout.
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> worker;
  std::thread thread([&] { worker = SocketTransport::connect(path, kAnyRank, {}); });
  auto daemon = SocketTransport::serve(path, 1, {});
  thread.join();

  worker->send(1, 0, control_envelope(9));
  worker.reset();  // worker process "exits": daemon sees EOF

  // Drain EOF + the frame. poll() until the close is observed.
  while (!daemon->peer_closed(1) && daemon->pending_messages() == 0) {
    daemon->poll(0.05);
  }
  if (!daemon->peer_closed(1)) {
    // Frame arrived before (or with) the EOF: it must still deliver.
    std::optional<ByteBuffer> wire;
    while (!(wire = daemon->try_recv_wire(0, 1)).has_value()) daemon->poll(0.05);
    const Envelope env = Envelope::decode(*wire);
    ByteReader reader(env.payload);
    EXPECT_EQ(ControlMsg::decode(reader).round, 9u);
  }
  while (!daemon->peer_closed(1)) daemon->poll(0.05);
  // Sends to the dead peer are metered, never throw (Transport rule).
  const std::uint64_t before = daemon->stats(0).bytes_sent;
  daemon->send(0, 1, control_envelope(10));
  EXPECT_EQ(daemon->stats(0).bytes_sent, before + control_envelope(10).wire_size());
}

TEST(SocketTransport, OversizedFrameDisconnectsPeer) {
  // A peer announcing more than max_frame_bytes is dropped before any
  // payload allocation; from the round loop's view it simply died.
  const std::string path = temp_socket_path("fed.sock");
  SocketTransportConfig small;
  small.max_frame_bytes = 64;
  std::unique_ptr<SocketTransport> worker;
  std::thread thread([&] { worker = SocketTransport::connect(path, kAnyRank, {}); });
  auto daemon = SocketTransport::serve(path, 1, small);
  thread.join();

  ControlMsg msg;
  msg.round = 1;
  Envelope big{MessageType::kControl, msg.encode()};
  big.payload.resize(256, 0);  // CRC now stale, but framing rejects first
  worker->send(1, 0, big);
  while (!daemon->peer_closed(1)) daemon->poll(0.05);
  EXPECT_FALSE(daemon->try_recv_wire(0, 1).has_value());
}

// ------------------------------------------------------ authentication

TEST(SocketTransport, AcceptsMatchingAuthToken) {
  const std::string path = temp_socket_path("fed.sock");
  SocketTransportConfig auth;
  auth.auth_token = "round11-secret";
  std::unique_ptr<SocketTransport> worker;
  std::thread thread(
      [&] { worker = SocketTransport::connect(path, kAnyRank, auth); });
  auto daemon = SocketTransport::serve(path, 1, auth);
  thread.join();
  EXPECT_EQ(worker->local_rank(), 1u);
}

TEST(SocketTransport, RejectsWrongAuthTokenWithoutConsumingRank) {
  const std::string path = temp_socket_path("fed.sock");
  SocketTransportConfig good;
  good.auth_token = "right-token";
  std::unique_ptr<SocketTransport> ok;
  std::thread workers([&] {
    SocketTransportConfig bad = good;
    bad.auth_token = "wrong-token";
    try {
      SocketTransport::connect(path, kAnyRank, bad);
      ADD_FAILURE() << "wrong token must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("auth rejected"), std::string::npos);
    }
    ok = SocketTransport::connect(path, kAnyRank, good);
  });
  auto daemon = SocketTransport::serve(path, 1, good);
  workers.join();
  // The rejected join consumed no rank: the honest worker still gets 1.
  EXPECT_EQ(ok->local_rank(), 1u);
}

// ------------------------------------------------------- version skew

TEST(SocketTransport, MixedBuildsNegotiateMinOfProtocolMaxes) {
  // A daemon speaking [1, 5] and a worker speaking [2, 7] must settle on
  // 5 — the newest protocol both builds implement.
  const std::string path = temp_socket_path("fed.sock");
  SocketTransportConfig daemon_cfg;
  daemon_cfg.proto_min_override = 1;
  daemon_cfg.proto_max_override = 5;
  SocketTransportConfig worker_cfg;
  worker_cfg.proto_min_override = 2;
  worker_cfg.proto_max_override = 7;
  std::unique_ptr<SocketTransport> worker;
  std::thread thread(
      [&] { worker = SocketTransport::connect(path, kAnyRank, worker_cfg); });
  auto daemon = SocketTransport::serve(path, 1, daemon_cfg);
  thread.join();
  EXPECT_EQ(worker->protocol_version(), 5u);
}

TEST(SocketTransport, DisjointVersionRangesRejectWithoutLeakingRank) {
  const std::string path = temp_socket_path("fed.sock");
  std::unique_ptr<SocketTransport> ok;
  std::thread workers([&] {
    SocketTransportConfig future;  // disjoint from the build's [1, 1]
    future.proto_min_override = kProtocolVersion + 7;
    future.proto_max_override = kProtocolVersion + 9;
    try {
      SocketTransport::connect(path, kAnyRank, future);
      ADD_FAILURE() << "disjoint version ranges must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("version mismatch"),
                std::string::npos);
    }
    ok = SocketTransport::connect(path, kAnyRank, {});
  });
  auto daemon = SocketTransport::serve(path, 1, {});
  workers.join();
  EXPECT_EQ(ok->local_rank(), 1u);
}

// -------------------------------------------------------- TcpTransport

TEST(ParseHostPort, SplitsIpv4BracketedIpv6AndHostnames) {
  EXPECT_EQ(parse_host_port("127.0.0.1:9000").host, "127.0.0.1");
  EXPECT_EQ(parse_host_port("127.0.0.1:9000").port, "9000");
  EXPECT_EQ(parse_host_port("[::1]:9000").host, "::1");
  EXPECT_EQ(parse_host_port("[::1]:9000").port, "9000");
  EXPECT_EQ(parse_host_port("localhost:0").host, "localhost");
  EXPECT_EQ(parse_host_port("localhost:0").port, "0");
}

TEST(ParseHostPort, RejectsMalformedAddresses) {
  EXPECT_THROW(parse_host_port(""), Error);
  EXPECT_THROW(parse_host_port("noport"), Error);
  EXPECT_THROW(parse_host_port("host:"), Error);
  EXPECT_THROW(parse_host_port(":9000"), Error);
  EXPECT_THROW(parse_host_port("::1:9000"), Error);   // bare IPv6
  EXPECT_THROW(parse_host_port("[::1]9000"), Error);  // ']' without ':'
  EXPECT_THROW(parse_host_port("[::1:9000"), Error);  // unbalanced '['
  EXPECT_THROW(parse_host_port("host:12ab"), Error);  // non-numeric port
}

/// Loopback address with a PID-derived port: parallel test binaries must
/// not collide, and SO_REUSEADDR covers TIME_WAIT between tests. The
/// `slot` offset keeps tests within one binary off each other's port.
std::string test_tcp_address(int slot) {
  const int port = 21000 + static_cast<int>(::getpid() % 19000) + slot;
  return "127.0.0.1:" + std::to_string(port);
}

TEST(TcpTransport, EnvelopeRoundTripWithAuthAndMetering) {
  const std::string address = test_tcp_address(0);
  StreamTransportConfig cfg;
  cfg.auth_token = "tcp-secret";
  std::unique_ptr<TcpTransport> worker;
  std::thread thread(
      [&] { worker = TcpTransport::connect(address, kAnyRank, cfg); });
  auto daemon = TcpTransport::serve(address, 1, cfg);
  thread.join();
  EXPECT_EQ(std::to_string(daemon->local_port()),
            parse_host_port(address).port);
  EXPECT_EQ(worker->local_rank(), 1u);
  EXPECT_EQ(worker->protocol_version(), kProtocolVersion);

  daemon->send(0, 1, control_envelope(5));
  std::optional<ByteBuffer> wire;
  while (!(wire = worker->try_recv_wire(1, 0)).has_value()) worker->poll(0.05);
  const Envelope down_env = Envelope::decode(*wire);
  ByteReader down(down_env.payload);
  EXPECT_EQ(ControlMsg::decode(down).round, 5u);

  worker->send(1, 0, control_envelope(6));
  std::size_t src = 99;
  while (!(wire = daemon->try_recv_any_wire(0, &src)).has_value()) {
    daemon->poll(0.05);
  }
  EXPECT_EQ(src, 1u);
  const Envelope up_env = Envelope::decode(*wire);
  ByteReader up(up_env.payload);
  EXPECT_EQ(ControlMsg::decode(up).round, 6u);

  // Same metering rule as the Unix backend and InMemoryNetwork: the
  // Envelope image only, never the 4-byte length prefix.
  EXPECT_EQ(daemon->stats(0).bytes_sent, control_envelope(5).wire_size());
  EXPECT_EQ(daemon->stats(1).bytes_sent, control_envelope(6).wire_size());
}

TEST(TcpTransport, RejectsWrongAuthTokenWithoutConsumingRank) {
  const std::string address = test_tcp_address(1);
  StreamTransportConfig good;
  good.auth_token = "tcp-right";
  std::unique_ptr<TcpTransport> ok;
  std::thread workers([&] {
    StreamTransportConfig bad = good;
    bad.auth_token = "tcp-wrong";
    try {
      TcpTransport::connect(address, kAnyRank, bad);
      ADD_FAILURE() << "wrong token must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("auth rejected"), std::string::npos);
    }
    ok = TcpTransport::connect(address, kAnyRank, good);
  });
  auto daemon = TcpTransport::serve(address, 1, good);
  workers.join();
  EXPECT_EQ(ok->local_rank(), 1u);
}

TEST(TcpTransport, VersionSkewMatchesSocketBackendSemantics) {
  // Same mixed-build negotiation as the Unix backend: overlapping
  // ranges settle on min(maxes), disjoint ranges reject cleanly and the
  // next compatible worker still gets rank 1.
  const std::string address = test_tcp_address(2);
  StreamTransportConfig daemon_cfg;
  daemon_cfg.proto_min_override = 1;
  daemon_cfg.proto_max_override = 5;
  std::unique_ptr<TcpTransport> skewed, ok;
  std::thread workers([&] {
    StreamTransportConfig disjoint;
    disjoint.proto_min_override = 6;
    disjoint.proto_max_override = 9;
    try {
      TcpTransport::connect(address, kAnyRank, disjoint);
      ADD_FAILURE() << "disjoint version ranges must be rejected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("version mismatch"),
                std::string::npos);
    }
    StreamTransportConfig overlap;
    overlap.proto_min_override = 2;
    overlap.proto_max_override = 7;
    ok = TcpTransport::connect(address, kAnyRank, overlap);
  });
  auto daemon = TcpTransport::serve(address, 1, daemon_cfg);
  workers.join();
  EXPECT_EQ(ok->local_rank(), 1u);
  EXPECT_EQ(ok->protocol_version(), 5u);
}

TEST(TcpTransport, ServeAbortsOnRejectWhenConfigured) {
  // The daemon tool's fail-fast path (satellite 2): with
  // abort_on_reject a bad join kills the serve with the reason in the
  // error instead of waiting out the accept timeout.
  const std::string address = test_tcp_address(3);
  StreamTransportConfig daemon_cfg;
  daemon_cfg.auth_token = "gate";
  daemon_cfg.abort_on_reject = true;
  std::thread worker([&] {
    StreamTransportConfig bad;
    bad.auth_token = "not-the-gate";
    EXPECT_THROW(TcpTransport::connect(address, kAnyRank, bad), Error);
  });
  try {
    TcpTransport::serve(address, 1, daemon_cfg);
    ADD_FAILURE() << "serve must abort on the rejected join";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("auth rejected"), std::string::npos);
  }
  worker.join();
}

}  // namespace
}  // namespace fedcav::comm
