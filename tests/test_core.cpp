// Unit tests for src/core: contribution weighting (clip + softmax),
// the FedCav strategy, and the anomaly detector.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/contribution.hpp"
#include "src/core/detector.hpp"
#include "src/core/fedcav.hpp"
#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::core {
namespace {

fl::ClientUpdate make_update(std::size_t id, std::vector<float> weights, double loss,
                             std::size_t samples = 10) {
  fl::ClientUpdate u;
  u.client_id = id;
  u.weights = std::move(weights);
  u.inference_loss = loss;
  u.num_samples = samples;
  return u;
}

// ----------------------------------------------------------------- clip

TEST(Clip, PolicyNamesRoundTrip) {
  for (const char* name : {"none", "mean", "quantile"}) {
    EXPECT_EQ(to_string(parse_clip_policy(name)), name);
  }
  EXPECT_THROW(parse_clip_policy("median"), Error);
}

TEST(Clip, NonePassesThrough) {
  ContributionConfig config;
  config.clip = ClipPolicy::kNone;
  const std::vector<double> losses = {1.0, 5.0, 100.0};
  EXPECT_EQ(clip_losses(losses, config), losses);
}

TEST(Clip, MeanCapsOutliers) {
  // Algorithm 1 line 7: f_j <- min(f_j, mean(f)).
  ContributionConfig config;  // mean is the default
  const std::vector<double> losses = {1.0, 2.0, 9.0};  // mean = 4
  const auto clipped = clip_losses(losses, config);
  EXPECT_DOUBLE_EQ(clipped[0], 1.0);
  EXPECT_DOUBLE_EQ(clipped[1], 2.0);
  EXPECT_DOUBLE_EQ(clipped[2], 4.0);
}

TEST(Clip, MeanOfUniformLossesIsIdentity) {
  ContributionConfig config;
  const std::vector<double> losses = {3.0, 3.0, 3.0};
  EXPECT_EQ(clip_losses(losses, config), losses);
}

TEST(Clip, QuantileCapsAtRequestedPercentile) {
  ContributionConfig config;
  config.clip = ClipPolicy::kQuantile;
  config.quantile = 0.5;  // median
  const std::vector<double> losses = {1.0, 2.0, 3.0, 4.0, 100.0};
  const auto clipped = clip_losses(losses, config);
  EXPECT_DOUBLE_EQ(clipped[4], 3.0);
  EXPECT_DOUBLE_EQ(clipped[0], 1.0);
}

TEST(Clip, QuantileValidatesRange) {
  ContributionConfig config;
  config.clip = ClipPolicy::kQuantile;
  config.quantile = 0.0;
  EXPECT_THROW(clip_losses({1.0}, config), Error);
}

TEST(Clip, EmptyInputThrows) {
  ContributionConfig config;
  EXPECT_THROW(clip_losses({}, config), Error);
}

// --------------------------------------------------------- contribution

TEST(Contribution, WeightsSumToOneAndArePositive) {
  ContributionConfig config;
  const auto w = contribution_weights({0.5, 2.0, 1.0, 7.5}, config);
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Contribution, EqualLossesGiveUniformWeights) {
  ContributionConfig config;
  const auto w = contribution_weights({2.0, 2.0, 2.0, 2.0}, config);
  for (double v : w) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Contribution, HigherLossGetsHigherWeight) {
  ContributionConfig config;
  config.clip = ClipPolicy::kNone;
  const auto w = contribution_weights({1.0, 2.0, 3.0}, config);
  EXPECT_LT(w[0], w[1]);
  EXPECT_LT(w[1], w[2]);
}

TEST(Contribution, MeanClipReducesAdvantageOfOutlier) {
  // Mean clipping caps the outlier at the (outlier-inflated) mean. The
  // paper concedes this only weakens, not neutralizes, a loss-inflation
  // attack ("even if local loss is clipped, attackers can also
  // iteratively increase") — so assert strict improvement, not immunity.
  ContributionConfig clipped_config;
  ContributionConfig raw_config;
  raw_config.clip = ClipPolicy::kNone;
  const std::vector<double> losses = {1.0, 1.0, 1.0, 50.0};
  const auto clipped = contribution_weights(losses, clipped_config);
  const auto raw = contribution_weights(losses, raw_config);
  EXPECT_GT(raw[3], 0.999999);   // unclipped: attacker owns the round
  EXPECT_LT(clipped[3], raw[3]);  // clipped: strictly less dominant
  EXPECT_GT(clipped[0], raw[0]);  // honest clients strictly gain
}

TEST(Contribution, MeanClipNeutralizesModerateOutlier) {
  // For a moderate outlier the mean clip does flatten the round: with
  // losses {1, 1, 1, 2} the mean is 1.25, so the outlier's weight is
  // bounded by softmax spread of 0.25 nats, not 1 nat.
  ContributionConfig config;
  const auto w = contribution_weights({1.0, 1.0, 1.0, 2.0}, config);
  EXPECT_LT(w[3], 0.32);
  EXPECT_GT(w[0], 0.22);
}

TEST(Contribution, StableUnderOverflowScaleLosses) {
  // §4.2.3 overflow note: naive softmax of e^1000 would overflow.
  ContributionConfig config;
  config.clip = ClipPolicy::kNone;
  const auto w = contribution_weights({1000.0, 999.0}, config);
  EXPECT_TRUE(std::isfinite(w[0]));
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  EXPECT_GT(w[0], w[1]);
}

TEST(Contribution, TemperatureSoftensWeights) {
  ContributionConfig sharp;
  sharp.clip = ClipPolicy::kNone;
  ContributionConfig soft = sharp;
  soft.temperature = 10.0;
  const std::vector<double> losses = {1.0, 3.0};
  const auto ws = contribution_weights(losses, sharp);
  const auto wf = contribution_weights(losses, soft);
  EXPECT_GT(ws[1] - ws[0], wf[1] - wf[0]);
}

TEST(Contribution, InvalidTemperatureThrows) {
  ContributionConfig config;
  config.temperature = 0.0;
  EXPECT_THROW(contribution_weights({1.0}, config), Error);
}

TEST(Contribution, PermutationEquivariant) {
  ContributionConfig config;
  const std::vector<double> losses = {0.3, 1.7, 0.9};
  const auto w = contribution_weights(losses, config);
  const auto w_perm = contribution_weights({0.9, 0.3, 1.7}, config);
  EXPECT_NEAR(w_perm[0], w[2], 1e-12);
  EXPECT_NEAR(w_perm[1], w[0], 1e-12);
  EXPECT_NEAR(w_perm[2], w[1], 1e-12);
}

TEST(Clip, QuantileOneIsIdentity) {
  // q = 1.0 interpolates to the maximum, so nothing is capped — the
  // upper edge of the valid range degrades gracefully to "no clip".
  ContributionConfig config;
  config.clip = ClipPolicy::kQuantile;
  config.quantile = 1.0;
  const std::vector<double> losses = {1.0, 2.0, 3.0, 100.0};
  EXPECT_EQ(clip_losses(losses, config), losses);
}

TEST(Contribution, SingleClientCohortGetsFullWeight) {
  // A quorum-1 round can aggregate exactly one survivor; its γ must be
  // exactly 1 under every clip policy (softmax of a singleton).
  for (ClipPolicy policy :
       {ClipPolicy::kNone, ClipPolicy::kMean, ClipPolicy::kQuantile}) {
    ContributionConfig config;
    config.clip = policy;
    const auto w = contribution_weights({3.7}, config);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
  }
}

TEST(Contribution, TwoClientCohortOrdersAndNormalizes) {
  // Smallest non-degenerate cohort: the mean clip caps the higher loss
  // at the midpoint, so the spread is (mean - low) nats, never more.
  ContributionConfig config;
  const auto w = contribution_weights({1.0, 3.0}, config);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_GT(w[1], w[0]);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
  // Clipped losses are {1, 2} → weight ratio is exactly e^(2-1).
  EXPECT_NEAR(w[1] / w[0], std::exp(1.0), 1e-9);
  // Equal losses must split exactly evenly.
  const auto even = contribution_weights({2.5, 2.5}, config);
  EXPECT_DOUBLE_EQ(even[0], even[1]);
  EXPECT_NEAR(even[0], 0.5, 1e-12);
}

TEST(Contribution, ClipAppliesBeforeTemperature) {
  // Pin the §4.2/§4.3 composition softmax(clip(f)/τ): with losses
  // {1, 3}, mean clip gives {1, 2}; at τ = 2 the weight ratio must be
  // e^((2−1)/2) = e^0.5. Applying τ to the *unclipped* losses and a
  // non-homogeneous clip would break this pin.
  ContributionConfig config;
  config.temperature = 2.0;
  const auto w = contribution_weights({1.0, 3.0}, config);
  EXPECT_NEAR(w[1] / w[0], std::exp(0.5), 1e-9);
}

// --------------------------------------------------------------- FedCav

TEST(FedCav, EqualLossesReduceToPlainAverage) {
  FedCavStrategy strategy;
  std::vector<fl::ClientUpdate> updates;
  updates.push_back(make_update(0, {0.0f, 4.0f}, 1.0));
  updates.push_back(make_update(1, {2.0f, 0.0f}, 1.0));
  const nn::Weights out = strategy.aggregate({0.0f, 0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST(FedCav, FavorsHighLossClient) {
  FedCavStrategy strategy;
  std::vector<fl::ClientUpdate> updates;
  updates.push_back(make_update(0, {0.0f}, 0.5));
  updates.push_back(make_update(1, {1.0f}, 1.5));
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_GT(out[0], 0.5f);  // pulled toward the high-loss client's model
  EXPECT_LT(out[0], 1.0f);  // but still a convex combination
}

TEST(FedCav, OutputStaysInConvexHull) {
  Rng rng(3);
  FedCavStrategy strategy;
  std::vector<fl::ClientUpdate> updates;
  for (std::size_t i = 0; i < 5; ++i) {
    updates.push_back(make_update(i, {rng.uniform_f(-2.0f, 2.0f)}, rng.uniform(0.0, 4.0)));
  }
  float lo = updates[0].weights[0];
  float hi = lo;
  for (const auto& u : updates) {
    lo = std::min(lo, u.weights[0]);
    hi = std::max(hi, u.weights[0]);
  }
  const nn::Weights out = strategy.aggregate({0.0f}, updates);
  EXPECT_GE(out[0], lo - 1e-5f);
  EXPECT_LE(out[0], hi + 1e-5f);
}

TEST(FedCav, WeightsIgnoreSampleCounts) {
  // Unlike FedAvg, a huge client with the same loss gets the same weight.
  FedCavStrategy strategy;
  std::vector<fl::ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}, 1.0, /*samples=*/1000));
  updates.push_back(make_update(1, {0.0f}, 1.0, /*samples=*/1));
  const auto gamma = strategy.aggregation_weights(updates);
  EXPECT_NEAR(gamma[0], gamma[1], 1e-12);
}

TEST(FedCav, GlobalLossIsLogSumExpOfClientLosses) {
  std::vector<fl::ClientUpdate> updates;
  updates.push_back(make_update(0, {0.0f}, 1.0));
  updates.push_back(make_update(1, {0.0f}, 2.0));
  const double expected = std::log(std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(FedCavStrategy::global_loss(updates), expected, 1e-12);
}

TEST(FedCav, EmptyUpdatesThrow) {
  FedCavStrategy strategy;
  EXPECT_THROW(strategy.aggregate({}, {}), Error);
  EXPECT_THROW(strategy.aggregation_weights({}), Error);
  EXPECT_THROW(FedCavStrategy::global_loss({}), Error);
}

TEST(FedCav, NameReflectsConfig) {
  EXPECT_NE(FedCavStrategy().name().find("clip=mean"), std::string::npos);
  ContributionConfig config;
  config.clip = ClipPolicy::kNone;
  EXPECT_NE(FedCavStrategy(config).name().find("clip=none"), std::string::npos);
}

// ------------------------------------------------------------- detector

TEST(Detector, NormalWithoutReference) {
  AnomalyDetector detector;
  const DetectionResult result = detector.check({10.0, 20.0});
  EXPECT_FALSE(result.abnormal);
  EXPECT_FALSE(detector.has_reference());
}

TEST(Detector, FiresWhenMajorityExceedPreviousMax) {
  AnomalyDetector detector;
  detector.commit({0.5, 0.8, 0.6});  // reference max = 0.8
  const DetectionResult result = detector.check({1.5, 2.0, 0.3});
  EXPECT_TRUE(result.abnormal);
  EXPECT_EQ(result.votes, 2u);
  EXPECT_EQ(result.voters, 3u);
  EXPECT_DOUBLE_EQ(result.previous_max, 0.8);
}

TEST(Detector, SilentWhenMinorityExceed) {
  AnomalyDetector detector;
  detector.commit({0.5, 0.8, 0.6});
  const DetectionResult result = detector.check({1.5, 0.2, 0.3});
  EXPECT_FALSE(result.abnormal);
  EXPECT_EQ(result.votes, 1u);
}

TEST(Detector, SilentOnMonotoneDecreasingLosses) {
  // Healthy training: losses shrink every round; the detector must stay
  // quiet through the whole trajectory.
  AnomalyDetector detector;
  std::vector<double> losses = {3.0, 2.5, 2.8};
  detector.commit(losses);
  for (int round = 0; round < 20; ++round) {
    for (double& f : losses) f *= 0.9;
    EXPECT_FALSE(detector.check(losses).abnormal) << "round " << round;
    detector.commit(losses);
  }
}

TEST(Detector, VoteFractionIsConfigurable) {
  DetectorConfig config;
  config.vote_fraction = 0.9;
  AnomalyDetector detector(config);
  detector.commit({1.0, 1.0, 1.0, 1.0});
  // 3 of 4 votes: fires at 0.5 but not at 0.9.
  EXPECT_FALSE(detector.check({2.0, 2.0, 2.0, 0.5}).abnormal);
  EXPECT_TRUE(detector.check({2.0, 2.0, 2.0, 2.0}).abnormal);
}

TEST(Detector, SlackRaisesThreshold) {
  DetectorConfig config;
  config.slack = 2.0;
  AnomalyDetector detector(config);
  detector.commit({1.0, 1.0});
  EXPECT_FALSE(detector.check({1.5, 1.8}).abnormal);  // under 2×
  EXPECT_TRUE(detector.check({2.5, 2.5}).abnormal);
}

TEST(Detector, CommitReplacesReference) {
  AnomalyDetector detector;
  detector.commit({5.0});
  detector.commit({1.0});
  EXPECT_TRUE(detector.check({1.5, 1.5}).abnormal);  // new max is 1.0
}

TEST(Detector, ResetForgetsReference) {
  AnomalyDetector detector;
  detector.commit({1.0});
  detector.reset();
  EXPECT_FALSE(detector.has_reference());
  EXPECT_FALSE(detector.check({100.0}).abnormal);
}

TEST(Detector, ReferencePersistsAcrossChecks) {
  // check() must not mutate state: the reverse logic relies on the
  // pre-attack reference surviving an abnormal round.
  AnomalyDetector detector;
  detector.commit({1.0});
  EXPECT_TRUE(detector.check({9.0, 9.0}).abnormal);
  EXPECT_TRUE(detector.check({9.0, 9.0}).abnormal);
  EXPECT_DOUBLE_EQ(detector.reference_max().value(), 1.0);
}

TEST(Detector, ValidatesConfigAndInput) {
  DetectorConfig bad;
  bad.vote_fraction = 0.0;
  EXPECT_THROW(AnomalyDetector{bad}, Error);
  bad = DetectorConfig{};
  bad.slack = 0.5;
  EXPECT_THROW(AnomalyDetector{bad}, Error);
  AnomalyDetector detector;
  EXPECT_THROW(detector.check({}), Error);
  EXPECT_THROW(detector.commit({}), Error);
}

}  // namespace
}  // namespace fedcav::core
