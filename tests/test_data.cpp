// Unit tests for src/data: datasets, synthetic corpora, partitioners,
// fresh-class splitting, distribution statistics, IDX loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "src/data/dataset.hpp"
#include "src/data/fresh.hpp"
#include "src/data/mnist_idx.hpp"
#include "src/data/partition.hpp"
#include "src/data/stats.hpp"
#include "src/data/synthetic.hpp"
#include "src/utils/error.hpp"

namespace fedcav::data {
namespace {

Dataset make_toy_dataset(std::size_t per_class, std::size_t classes = 4) {
  Dataset ds(Shape::of(1, 2, 2), classes);
  std::vector<float> px(4);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      for (auto& v : px) v = static_cast<float>(c) + 0.01f * static_cast<float>(i);
      ds.add_sample(px, c);
    }
  }
  return ds;
}

// ------------------------------------------------------------- Dataset

TEST(Dataset, AddAndAccess) {
  Dataset ds(Shape::of(1, 2, 2), 3);
  ds.add_sample(std::vector<float>{1, 2, 3, 4}, 2);
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds.label(0), 2u);
  EXPECT_FLOAT_EQ(ds.pixels(0)[3], 4.0f);
}

TEST(Dataset, RejectsBadSamples) {
  Dataset ds(Shape::of(1, 2, 2), 3);
  EXPECT_THROW(ds.add_sample(std::vector<float>{1, 2}, 0), Error);
  EXPECT_THROW(ds.add_sample(std::vector<float>{1, 2, 3, 4}, 3), Error);
}

TEST(Dataset, RequiresChwShape) {
  EXPECT_THROW(Dataset(Shape::of(4), 2), Error);
  EXPECT_THROW(Dataset(Shape::of(1, 2, 2), 0), Error);
}

TEST(Dataset, ClassHistogramCounts) {
  Dataset ds = make_toy_dataset(3);
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 4u);
  for (std::size_t c : hist) EXPECT_EQ(c, 3u);
}

TEST(Dataset, MakeBatchAssemblesSelectedSamples) {
  Dataset ds = make_toy_dataset(2);
  std::vector<std::size_t> idx = {1, 4};
  std::vector<std::size_t> labels;
  Tensor batch = ds.make_batch(idx, &labels);
  EXPECT_EQ(batch.shape(), Shape::of(2, 1, 2, 2));
  EXPECT_EQ(labels[0], ds.label(1));
  EXPECT_EQ(labels[1], ds.label(4));
  EXPECT_FLOAT_EQ(batch[0], ds.pixels(1)[0]);
  EXPECT_FLOAT_EQ(batch[4], ds.pixels(4)[0]);
}

TEST(Dataset, MakeBatchValidatesIndices) {
  Dataset ds = make_toy_dataset(1);
  std::vector<std::size_t> bad = {99};
  EXPECT_THROW(ds.make_batch(bad, nullptr), Error);
  std::vector<std::size_t> empty;
  EXPECT_THROW(ds.make_batch(empty, nullptr), Error);
}

TEST(Dataset, SubsetCopiesSelection) {
  Dataset ds = make_toy_dataset(2);
  std::vector<std::size_t> idx = {0, 7};
  Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), ds.label(0));
  EXPECT_EQ(sub.label(1), ds.label(7));
}

TEST(Dataset, IndicesOfClassFindsAll) {
  Dataset ds = make_toy_dataset(3);
  const auto idx = ds.indices_of_class(2);
  EXPECT_EQ(idx.size(), 3u);
  for (std::size_t i : idx) EXPECT_EQ(ds.label(i), 2u);
}

TEST(Dataset, ShufflePreservesMultiset) {
  Dataset ds = make_toy_dataset(5);
  const auto before = ds.class_histogram();
  Rng rng(1);
  ds.shuffle(rng);
  EXPECT_EQ(ds.class_histogram(), before);
}

TEST(Dataset, ShuffleKeepsPixelLabelPairing) {
  Dataset ds = make_toy_dataset(5);
  Rng rng(2);
  ds.shuffle(rng);
  // In the toy set, floor(pixel[0]) encodes the label.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(ds.pixels(i)[0]), ds.label(i));
  }
}

TEST(Dataset, AppendMergesAndValidates) {
  Dataset a = make_toy_dataset(2);
  Dataset b = make_toy_dataset(3);
  a.append(b);
  EXPECT_EQ(a.size(), 20u);
  Dataset wrong(Shape::of(1, 3, 3), 4);
  EXPECT_THROW(a.append(wrong), Error);
}

TEST(Dataset, TrainTestSplitPartitionsAll) {
  Dataset ds = make_toy_dataset(10);
  Rng rng(3);
  const TrainTestSplit split = split_train_test(ds, 0.75, rng);
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.test.size(), 10u);
  EXPECT_THROW(split_train_test(ds, 0.0, rng), Error);
  EXPECT_THROW(split_train_test(ds, 1.0, rng), Error);
}

// ----------------------------------------------------------- synthetic

TEST(Synthetic, ConfigValidation) {
  SynthConfig c = synth_digits_config();
  EXPECT_NO_THROW(c.validate());
  c.class_overlap = 1.0;
  EXPECT_THROW(c.validate(), Error);
  c = synth_digits_config();
  c.max_shift = c.side;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Synthetic, GeneratorIsDeterministic) {
  const SynthGenerator gen(synth_digits_config(7));
  Rng a(5);
  Rng b(5);
  Dataset da = gen.generate_balanced(3, a);
  Dataset db = gen.generate_balanced(3, b);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.label(i), db.label(i));
    EXPECT_FLOAT_EQ(da.pixels(i)[0], db.pixels(i)[0]);
  }
}

TEST(Synthetic, BalancedGenerationHasEqualCounts) {
  const SynthGenerator gen(synth_digits_config());
  Rng rng(5);
  Dataset ds = gen.generate_balanced(7, rng);
  EXPECT_EQ(ds.size(), 70u);
  for (std::size_t c : ds.class_histogram()) EXPECT_EQ(c, 7u);
}

TEST(Synthetic, CountsGenerationFollowsRequest) {
  const SynthGenerator gen(synth_digits_config());
  Rng rng(5);
  std::vector<std::size_t> counts = {5, 0, 2, 0, 0, 0, 0, 0, 0, 1};
  Dataset ds = gen.generate_with_counts(counts, rng);
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds.class_histogram(), counts);
}

TEST(Synthetic, ClassesAreSeparated) {
  // Same-class samples must be closer (on average) than cross-class
  // samples, otherwise nothing is learnable.
  const SynthGenerator gen(synth_digits_config());
  Rng rng(6);
  std::vector<float> a1;
  std::vector<float> a2;
  std::vector<float> b1;
  gen.sample_into(0, rng, a1);
  gen.sample_into(0, rng, a2);
  gen.sample_into(5, rng, b1);
  double same = 0.0;
  double cross = 0.0;
  for (std::size_t i = 0; i < a1.size(); ++i) {
    const double ds = static_cast<double>(a1[i]) - static_cast<double>(a2[i]);
    const double dc = static_cast<double>(a1[i]) - static_cast<double>(b1[i]);
    same += ds * ds;
    cross += dc * dc;
  }
  EXPECT_LT(same, cross);
}

TEST(Synthetic, CifarIsHarderThanDigits) {
  // Hardness knobs: cifar has more overlap + noise than digits.
  const SynthConfig digits = synth_digits_config();
  const SynthConfig cifar = synth_cifar_config();
  EXPECT_GT(cifar.class_overlap, digits.class_overlap);
  EXPECT_GT(cifar.noise_stddev, digits.noise_stddev);
  EXPECT_EQ(cifar.channels, 3u);
}

TEST(Synthetic, NameLookup) {
  EXPECT_EQ(synth_config_by_name("digits", 1).channels, 1u);
  EXPECT_EQ(synth_config_by_name("fashion", 1).channels, 1u);
  EXPECT_EQ(synth_config_by_name("cifar", 1).channels, 3u);
  EXPECT_THROW(synth_config_by_name("imagenet", 1), Error);
}

TEST(Synthetic, SampleIntoRejectsBadLabel) {
  const SynthGenerator gen(synth_digits_config());
  Rng rng(6);
  std::vector<float> out;
  EXPECT_THROW(gen.sample_into(10, rng, out), Error);
}

// ----------------------------------------------------------- partition

Dataset make_partition_corpus(std::size_t per_class = 40) {
  const SynthGenerator gen(synth_digits_config());
  Rng rng(9);
  return gen.generate_balanced(per_class, rng);
}

TEST(Partition, SchemeNamesRoundTrip) {
  for (const char* name : {"iid", "noniid", "imbalanced", "dirichlet"}) {
    EXPECT_EQ(to_string(parse_partition_scheme(name)), name);
  }
  EXPECT_THROW(parse_partition_scheme("random"), Error);
}

TEST(Partition, IidCoversEverySampleExactlyOnce) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kIidBalanced;
  config.num_clients = 10;
  const Partition part = make_partition(ds, config);
  EXPECT_EQ(part.size(), 10u);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& client : part) {
    total += client.size();
    seen.insert(client.begin(), client.end());
  }
  EXPECT_EQ(total, ds.size());
  EXPECT_EQ(seen.size(), ds.size());
}

TEST(Partition, IidClientsSeeMostClasses) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kIidBalanced;
  config.num_clients = 10;
  const Partition part = make_partition(ds, config);
  for (std::size_t classes : classes_per_client(ds, part)) EXPECT_GE(classes, 8u);
}

TEST(Partition, NonIidShardClientsSeeFewClasses) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kNonIidBalanced;
  config.num_clients = 20;
  config.classes_per_client = 2;
  const Partition part = make_partition(ds, config);
  // Shard boundaries can straddle one class edge, so allow <= 3.
  for (std::size_t classes : classes_per_client(ds, part)) {
    EXPECT_GE(classes, 1u);
    EXPECT_LE(classes, 3u);
  }
}

TEST(Partition, NonIidShardsCoverEverySample) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kNonIidBalanced;
  config.num_clients = 20;
  const Partition part = make_partition(ds, config);
  std::size_t total = 0;
  for (const auto& client : part) total += client.size();
  EXPECT_EQ(total, ds.size());
}

TEST(Partition, ImbalancedClientsHaveExactlyTwoClasses) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kNonIidImbalanced;
  config.num_clients = 15;
  config.sigma = 600.0;
  const Partition part = make_partition(ds, config);
  for (std::size_t classes : classes_per_client(ds, part)) EXPECT_EQ(classes, 2u);
}

TEST(Partition, SigmaIncreasesWithinClientImbalance) {
  Dataset ds = make_partition_corpus(100);
  auto imbalance_at = [&](double sigma) {
    PartitionConfig config;
    config.scheme = PartitionScheme::kNonIidImbalanced;
    config.num_clients = 20;
    config.sigma = sigma;
    config.seed = 11;
    const Partition part = make_partition(ds, config);
    const auto hists = client_class_histograms(ds, part);
    // Mean over clients of |n_a - n_b| / (n_a + n_b).
    double acc = 0.0;
    for (const auto& h : hists) {
      std::vector<std::size_t> sizes;
      for (std::size_t c : h) {
        if (c > 0) sizes.push_back(c);
      }
      const double a = static_cast<double>(sizes[0]);
      const double b = sizes.size() > 1 ? static_cast<double>(sizes[1]) : 0.0;
      acc += std::abs(a - b) / (a + b);
    }
    return acc / static_cast<double>(hists.size());
  };
  const double low = imbalance_at(150.0);
  const double high = imbalance_at(900.0);
  EXPECT_GT(high, low);
}

TEST(Partition, SigmaToCvMapping) {
  EXPECT_DOUBLE_EQ(sigma_to_cv(300.0), 0.15);
  EXPECT_DOUBLE_EQ(sigma_to_cv(600.0), 0.30);
  EXPECT_DOUBLE_EQ(sigma_to_cv(900.0), 0.45);
}

TEST(Partition, DirichletProducesValidPartition) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kDirichlet;
  config.num_clients = 12;
  config.dirichlet_alpha = 0.3;
  const Partition part = make_partition(ds, config);
  EXPECT_EQ(part.size(), 12u);
  for (const auto& client : part) {
    EXPECT_FALSE(client.empty());
    for (std::size_t i : client) EXPECT_LT(i, ds.size());
  }
}

TEST(Partition, DirichletLowAlphaIsMoreConcentrated) {
  Dataset ds = make_partition_corpus(100);
  auto divergence_at = [&](double alpha) {
    PartitionConfig config;
    config.scheme = PartitionScheme::kDirichlet;
    config.num_clients = 20;
    config.dirichlet_alpha = alpha;
    config.seed = 13;
    return mean_client_divergence(ds, make_partition(ds, config));
  };
  EXPECT_GT(divergence_at(0.1), divergence_at(10.0));
}

TEST(Partition, ConfigValidation) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.num_clients = 0;
  EXPECT_THROW(make_partition(ds, config), Error);
  config = PartitionConfig{};
  config.sigma = -1.0;
  EXPECT_THROW(make_partition(ds, config), Error);
  config = PartitionConfig{};
  config.num_clients = 10000;  // more clients than samples
  EXPECT_THROW(make_partition(ds, config), Error);
}

TEST(Partition, DeterministicGivenSeed) {
  Dataset ds = make_partition_corpus();
  PartitionConfig config;
  config.scheme = PartitionScheme::kNonIidImbalanced;
  config.num_clients = 10;
  config.seed = 21;
  const Partition a = make_partition(ds, config);
  const Partition b = make_partition(ds, config);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- fresh

TEST(Fresh, SplitsByLabel) {
  Dataset ds = make_partition_corpus(10);
  const FreshSplit split = split_fresh_classes(ds, 0.3);
  EXPECT_EQ(split.fresh_classes.size(), 3u);
  EXPECT_EQ(split.fresh_classes.front(), 7u);
  EXPECT_EQ(split.common.size() + split.fresh.size(), ds.size());
  for (std::size_t i = 0; i < split.common.size(); ++i) {
    EXPECT_LT(split.common.label(i), 7u);
  }
  for (std::size_t i = 0; i < split.fresh.size(); ++i) {
    EXPECT_GE(split.fresh.label(i), 7u);
  }
}

TEST(Fresh, AlphaZeroGivesNoFresh) {
  Dataset ds = make_partition_corpus(5);
  const FreshSplit split = split_fresh_classes(ds, 0.0);
  EXPECT_TRUE(split.fresh.empty());
  EXPECT_EQ(split.common.size(), ds.size());
}

TEST(Fresh, AlphaAboveHalfRejected) {
  Dataset ds = make_partition_corpus(5);
  EXPECT_THROW(split_fresh_classes(ds, 0.6), Error);
}

// --------------------------------------------------------------- stats

TEST(Stats, HistogramStddev) {
  EXPECT_DOUBLE_EQ(histogram_stddev({4, 4, 4}), 0.0);
  EXPECT_NEAR(histogram_stddev({0, 8}), 4.0, 1e-12);
  EXPECT_THROW(histogram_stddev({}), Error);
}

TEST(Stats, DivergenceZeroForPerfectIid) {
  // One client owning the whole dataset has exactly the global mix.
  Dataset ds = make_partition_corpus(5);
  Partition part(1);
  for (std::size_t i = 0; i < ds.size(); ++i) part[0].push_back(i);
  EXPECT_NEAR(mean_client_divergence(ds, part), 0.0, 1e-12);
}

TEST(Stats, DivergenceHighForSingleClassClients) {
  Dataset ds = make_partition_corpus(5);
  Partition part(10);
  for (std::size_t i = 0; i < ds.size(); ++i) part[ds.label(i)].push_back(i);
  // Every client holds one of 10 classes: TV distance = 0.9.
  EXPECT_NEAR(mean_client_divergence(ds, part), 0.9, 1e-9);
}

// ----------------------------------------------------------------- idx

class IdxFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    images_path_ = ::testing::TempDir() + "fedcav_test_images.idx";
    labels_path_ = ::testing::TempDir() + "fedcav_test_labels.idx";
    write_idx_pair(3);
  }

  void TearDown() override {
    std::remove(images_path_.c_str());
    std::remove(labels_path_.c_str());
  }

  static void write_be32(std::ofstream& out, std::uint32_t v) {
    const unsigned char b[4] = {
        static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char*>(b), 4);
  }

  void write_idx_pair(std::uint32_t n) {
    std::ofstream imgs(images_path_, std::ios::binary);
    write_be32(imgs, 0x00000803);
    write_be32(imgs, n);
    write_be32(imgs, 28);
    write_be32(imgs, 28);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::vector<unsigned char> px(28 * 28, static_cast<unsigned char>(i * 40));
      imgs.write(reinterpret_cast<const char*>(px.data()),
                 static_cast<std::streamsize>(px.size()));
    }
    std::ofstream lbls(labels_path_, std::ios::binary);
    write_be32(lbls, 0x00000801);
    write_be32(lbls, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const char label = static_cast<char>(i % 10);
      lbls.write(&label, 1);
    }
  }

  std::string images_path_;
  std::string labels_path_;
};

TEST_F(IdxFixture, LoadsAndPoolsImages) {
  Dataset ds = load_mnist_idx(images_path_, labels_path_, 14);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.sample_shape(), Shape::of(1, 14, 14));
  EXPECT_EQ(ds.label(2), 2u);
  // Constant image of value 80 -> pooled pixel = 80/255.
  EXPECT_NEAR(ds.pixels(2)[0], 80.0f / 255.0f, 1e-5f);
}

TEST_F(IdxFixture, AvailabilityProbe) {
  EXPECT_TRUE(mnist_idx_available(images_path_, labels_path_));
  EXPECT_FALSE(mnist_idx_available(images_path_ + ".missing", labels_path_));
  // Swapped files fail the magic check.
  EXPECT_FALSE(mnist_idx_available(labels_path_, images_path_));
}

TEST_F(IdxFixture, RejectsSwappedFiles) {
  EXPECT_THROW(load_mnist_idx(labels_path_, images_path_, 14), Error);
}

TEST_F(IdxFixture, RejectsIndivisibleTargetSide) {
  EXPECT_THROW(load_mnist_idx(images_path_, labels_path_, 13), Error);
}

}  // namespace
}  // namespace fedcav::data
