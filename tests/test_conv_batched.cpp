// Batched im2col-GEMM convolution vs a naive direct-convolution oracle.
//
// Conv2D lowers the whole batch into one (col_rows × batch·oh·ow) column
// matrix and runs a single GEMM per call; these tests pin that fused path
// to the textbook quadruple loop on awkward geometries (padding, stride,
// edge-tile channel counts) for batch = 1 and batch > 1, plus
// finite-difference gradient checks on the same geometries.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/nn/conv2d.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"
#include "tests/test_helpers.hpp"

namespace fedcav {
namespace {

using nn::Conv2D;

struct ConvCase {
  std::size_t batch, in_c, out_c, h, w, kernel, stride, pad;
};

// Direct convolution, float64 accumulation: the trusted reference.
Tensor naive_conv(const Tensor& input, const Tensor& weight, const Tensor& bias,
                  const ConvCase& g) {
  const std::size_t oh = (g.h + 2 * g.pad - g.kernel) / g.stride + 1;
  const std::size_t ow = (g.w + 2 * g.pad - g.kernel) / g.stride + 1;
  Tensor out(Shape::of(g.batch, g.out_c, oh, ow));
  for (std::size_t b = 0; b < g.batch; ++b) {
    for (std::size_t oc = 0; oc < g.out_c; ++oc) {
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x) {
          double acc = static_cast<double>(bias(oc));
          for (std::size_t ic = 0; ic < g.in_c; ++ic) {
            for (std::size_t kh = 0; kh < g.kernel; ++kh) {
              for (std::size_t kw = 0; kw < g.kernel; ++kw) {
                const long long sy = static_cast<long long>(y * g.stride + kh) -
                                     static_cast<long long>(g.pad);
                const long long sx = static_cast<long long>(x * g.stride + kw) -
                                     static_cast<long long>(g.pad);
                if (sy < 0 || sy >= static_cast<long long>(g.h) || sx < 0 ||
                    sx >= static_cast<long long>(g.w)) {
                  continue;
                }
                const float v = input(b, ic, static_cast<std::size_t>(sy),
                                      static_cast<std::size_t>(sx));
                const float wv = weight(oc, (ic * g.kernel + kh) * g.kernel + kw);
                acc += static_cast<double>(v) * static_cast<double>(wv);
              }
            }
          }
          out(b, oc, y, x) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

const ConvCase kCases[] = {
    {1, 2, 3, 8, 8, 3, 1, 1},   // padded, batch = 1
    {4, 2, 3, 8, 8, 3, 1, 1},   // padded, batch > 1
    {3, 2, 5, 9, 9, 3, 2, 0},   // strided
    {5, 1, 2, 7, 7, 3, 2, 1},   // strided + padded
    {2, 3, 7, 6, 6, 1, 1, 0},   // 1×1 kernel, edge-tile channel count
    {6, 1, 4, 5, 5, 5, 1, 2},   // kernel = input side, heavy padding
    {2, 2, 3, 1, 1, 5, 1, 2},   // 1×1 input under a 5×5 kernel: every
                                // kernel row/col but the centre is pure
                                // padding (degenerate valid intervals)
};

class ConvBatched : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvBatched, ForwardMatchesNaiveOracle) {
  const ConvCase g = GetParam();
  Rng rng(0x5eed + g.batch * 131 + g.kernel);
  Conv2D conv(g.in_c, g.out_c, g.kernel, g.stride, g.pad, g.h, g.w, rng);
  const Tensor input = Tensor::uniform(Shape::of(g.batch, g.in_c, g.h, g.w), rng,
                                       -1.0f, 1.0f);
  const Tensor& weight = *conv.params()[0].value;
  const Tensor& bias = *conv.params()[1].value;

  const Tensor expected = naive_conv(input, weight, bias, g);
  const Tensor& got = conv.forward(input, /*training=*/false);
  ASSERT_TRUE(got.same_shape(expected));
  for (std::size_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-4f) << "flat index " << i;
  }
}

TEST_P(ConvBatched, BackwardMatchesNumericGradient) {
  const ConvCase g = GetParam();
  Rng rng(0xbeef + g.stride);
  Conv2D conv(g.in_c, g.out_c, g.kernel, g.stride, g.pad, g.h, g.w, rng);
  const Tensor input = Tensor::uniform(Shape::of(g.batch, g.in_c, g.h, g.w), rng,
                                       -1.0f, 1.0f);
  // eps = 1e-2 as in the test_zoo_training sweep: the check's loss is
  // quadratic, so larger eps only reduces float32 rounding noise.
  EXPECT_LT(testing::gradient_check_layer(conv, input, /*eps=*/1e-2), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvBatched, ::testing::ValuesIn(kCases));

// Forward must not depend on how the batch is sliced: running images
// one at a time gives bitwise-identical planes to the fused whole-batch
// GEMM (same k-order dot products).
TEST(ConvBatched, PerImageSlicesMatchFusedBatch) {
  const ConvCase g{4, 2, 3, 8, 8, 3, 1, 1};
  Rng rng(77);
  Conv2D conv(g.in_c, g.out_c, g.kernel, g.stride, g.pad, g.h, g.w, rng);
  const Tensor batch_in = Tensor::uniform(Shape::of(g.batch, g.in_c, g.h, g.w), rng,
                                          -1.0f, 1.0f);
  const Tensor fused = conv.forward(batch_in, /*training=*/false);

  const std::size_t image = g.in_c * g.h * g.w;
  const std::size_t out_image = fused.numel() / g.batch;
  for (std::size_t b = 0; b < g.batch; ++b) {
    Tensor one(Shape::of(1, g.in_c, g.h, g.w));
    for (std::size_t i = 0; i < image; ++i) one[i] = batch_in[b * image + i];
    const Tensor& single = conv.forward(one, /*training=*/false);
    for (std::size_t i = 0; i < out_image; ++i) {
      ASSERT_EQ(single[i], fused[b * out_image + i]) << "image " << b << " flat " << i;
    }
  }
}

}  // namespace
}  // namespace fedcav
