// Unit tests for src/tensor: shapes, storage, ops, im2col, serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/im2col.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/serialize.hpp"
#include "src/tensor/shape.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav {
namespace {

// --------------------------------------------------------------- Shape

TEST(Shape, NumelMultipliesDims) {
  EXPECT_EQ(Shape::of(3).numel(), 3u);
  EXPECT_EQ(Shape::of(2, 3).numel(), 6u);
  EXPECT_EQ(Shape::of(2, 3, 4).numel(), 24u);
  EXPECT_EQ(Shape::of(2, 3, 4, 5).numel(), 120u);
}

TEST(Shape, ScalarShapeHasNumelOne) {
  Shape scalar;
  EXPECT_EQ(scalar.rank(), 0u);
  EXPECT_EQ(scalar.numel(), 1u);
}

TEST(Shape, OffsetIsRowMajor) {
  const Shape s = Shape::of(2, 3, 4);
  EXPECT_EQ(s.offset(0, 0, 0), 0u);
  EXPECT_EQ(s.offset(0, 0, 3), 3u);
  EXPECT_EQ(s.offset(0, 1, 0), 4u);
  EXPECT_EQ(s.offset(1, 0, 0), 12u);
  EXPECT_EQ(s.offset(1, 2, 3), 23u);
}

TEST(Shape, OffsetRankMismatchThrows) {
  const Shape s = Shape::of(2, 3);
  EXPECT_THROW(s.offset(1), Error);
  EXPECT_THROW(s.offset(1, 1, 1), Error);
}

TEST(Shape, EqualityComparesRankAndDims) {
  EXPECT_EQ(Shape::of(2, 3), Shape::of(2, 3));
  EXPECT_NE(Shape::of(2, 3), Shape::of(3, 2));
  EXPECT_NE(Shape::of(6), Shape::of(2, 3));
}

TEST(Shape, AxisOutOfRangeThrows) {
  const Shape s = Shape::of(2, 3);
  EXPECT_EQ(s[1], 3u);
  EXPECT_THROW(s[2], Error);
}

TEST(Shape, ToStringFormats) { EXPECT_EQ(Shape::of(2, 3).to_string(), "[2, 3]"); }

// -------------------------------------------------------------- Tensor

TEST(Tensor, ConstructsFilled) {
  Tensor t(Shape::of(2, 3), 1.5f);
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape::of(2), std::vector<float>{1.0f, 2.0f}));
  EXPECT_THROW(Tensor(Shape::of(3), std::vector<float>{1.0f, 2.0f}), Error);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t(Shape::of(2, 3));
  t(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  EXPECT_FLOAT_EQ(t(1, 2), 7.0f);
}

TEST(Tensor, CheckedAtThrowsOutOfRange) {
  Tensor t(Shape::of(2));
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape::of(2, 3));
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped(Shape::of(3, 2));
  EXPECT_EQ(r.shape(), Shape::of(3, 2));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape::of(4, 2)), Error);
}

TEST(Tensor, UniformInitWithinBounds) {
  Rng rng(3);
  Tensor t = Tensor::uniform(Shape::of(1000), rng, -2.0f, 2.0f);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 2.0f);
  }
}

TEST(Tensor, NormalInitHasRequestedMoments) {
  Rng rng(3);
  Tensor t = Tensor::normal(Shape::of(4, 2500), rng, 1.0f, 0.5f);
  double sum = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) sum += static_cast<double>(t[i]);
  EXPECT_NEAR(sum / static_cast<double>(t.numel()), 1.0, 0.05);
}

// ----------------------------------------------------------------- ops

TEST(Ops, ElementwiseAddSubMul) {
  Tensor a(Shape::of(3), std::vector<float>{1, 2, 3});
  Tensor b(Shape::of(3), std::vector<float>{4, 5, 6});
  Tensor sum = ops::add(a, b);
  Tensor diff = ops::sub(b, a);
  Tensor prod = ops::mul(a, b);
  EXPECT_FLOAT_EQ(sum[0], 5);
  EXPECT_FLOAT_EQ(sum[2], 9);
  EXPECT_FLOAT_EQ(diff[1], 3);
  EXPECT_FLOAT_EQ(prod[2], 18);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a(Shape::of(3));
  Tensor b(Shape::of(4));
  EXPECT_THROW(ops::add_inplace(a, b), Error);
}

TEST(Ops, AxpyAndScale) {
  Tensor y(Shape::of(3), std::vector<float>{1, 1, 1});
  Tensor x(Shape::of(3), std::vector<float>{1, 2, 3});
  ops::axpy_inplace(y, 2.0f, x);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  ops::scale_inplace(y, 0.5f);
  EXPECT_FLOAT_EQ(y[2], 3.5f);
}

TEST(Ops, FlatSpanHelpers) {
  std::vector<float> a = {3.0f, 4.0f};
  std::vector<float> b = {1.0f, 0.0f};
  EXPECT_FLOAT_EQ(ops::l2_norm(a), 5.0f);
  EXPECT_FLOAT_EQ(ops::dot(a, b), 3.0f);
  EXPECT_FLOAT_EQ(ops::l2_distance(a, b), std::sqrt(4.0f + 16.0f));
  ops::axpy(std::span<float>(a), -1.0f, std::span<const float>(b));
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  ops::scale(std::span<float>(a), 2.0f);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
}

TEST(Ops, MatmulKnownValues) {
  Tensor a(Shape::of(2, 3), std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b(Shape::of(3, 2), std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(Ops, MatmulAgainstNaiveRandom) {
  Rng rng(5);
  const std::size_t m = 17;
  const std::size_t k = 23;
  const std::size_t n = 13;
  Tensor a = Tensor::uniform(Shape::of(m, k), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(k, n), rng, -1.0f, 1.0f);
  Tensor c = ops::matmul(a, b);
  for (std::size_t i = 0; i < m; i += 3) {
    for (std::size_t j = 0; j < n; j += 2) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a(i, kk)) * static_cast<double>(b(kk, j));
      }
      EXPECT_NEAR(c(i, j), acc, 1e-4);
    }
  }
}

TEST(Ops, MatmulTransposedBMatchesExplicitTranspose) {
  Rng rng(6);
  Tensor a = Tensor::uniform(Shape::of(4, 5), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(3, 5), rng, -1.0f, 1.0f);
  Tensor c1(Shape::of(4, 3));
  ops::matmul_transposed_b(a, b, c1);
  Tensor c2 = ops::matmul(a, ops::transpose(b));
  for (std::size_t i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5);
}

TEST(Ops, MatmulTransposedAMatchesExplicitTranspose) {
  Rng rng(7);
  Tensor a = Tensor::uniform(Shape::of(5, 4), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(5, 3), rng, -1.0f, 1.0f);
  Tensor c1(Shape::of(4, 3));
  ops::matmul_transposed_a(a, b, c1);
  Tensor c2 = ops::matmul(ops::transpose(a), b);
  for (std::size_t i = 0; i < c1.numel(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-5);
}

TEST(Ops, MatmulDimensionMismatchThrows) {
  Tensor a(Shape::of(2, 3));
  Tensor b(Shape::of(4, 2));
  EXPECT_THROW(ops::matmul(a, b), Error);
}

TEST(Ops, TransposeSwapsIndices) {
  Tensor a(Shape::of(2, 3), std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor t = ops::transpose(a);
  EXPECT_EQ(t.shape(), Shape::of(3, 2));
  EXPECT_FLOAT_EQ(t(0, 1), 4);
  EXPECT_FLOAT_EQ(t(2, 0), 3);
}

TEST(Ops, Reductions) {
  Tensor a(Shape::of(4), std::vector<float>{1, -2, 3, 6});
  EXPECT_FLOAT_EQ(ops::sum(a), 8.0f);
  EXPECT_FLOAT_EQ(ops::mean(a), 2.0f);
  EXPECT_FLOAT_EQ(ops::max_value(a), 6.0f);
  EXPECT_EQ(ops::argmax(a.span()), 3u);
}

TEST(Ops, ArgmaxFirstOfTies) {
  std::vector<float> v = {1.0f, 5.0f, 5.0f};
  EXPECT_EQ(ops::argmax(v), 1u);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor logits = Tensor::uniform(Shape::of(5, 10), rng, -4.0f, 4.0f);
  Tensor p = ops::softmax_rows(logits);
  for (std::size_t r = 0; r < 5; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < 10; ++c) {
      EXPECT_GT(p(r, c), 0.0f);
      row += static_cast<double>(p(r, c));
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxRowsStableUnderHugeLogits) {
  Tensor logits(Shape::of(1, 3), std::vector<float>{1000.0f, 1001.0f, 999.0f});
  Tensor p = ops::softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_GT(p(0, 1), p(0, 0));
  EXPECT_GT(p(0, 0), p(0, 2));
}

TEST(Ops, StableSoftmaxMatchesDirectComputation) {
  const std::vector<double> x = {0.5, 1.5, -0.5};
  const auto p = ops::stable_softmax(x);
  double denom = std::exp(0.5) + std::exp(1.5) + std::exp(-0.5);
  EXPECT_NEAR(p[0], std::exp(0.5) / denom, 1e-12);
  EXPECT_NEAR(p[1], std::exp(1.5) / denom, 1e-12);
  EXPECT_NEAR(p[2], std::exp(-0.5) / denom, 1e-12);
}

TEST(Ops, StableSoftmaxHandlesExtremeValues) {
  const auto p = ops::stable_softmax({1e6, 1e6 - 1.0});
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[0], p[1]);
}

TEST(Ops, LogSumExpMatchesNaiveForSmallValues) {
  const std::vector<double> x = {0.1, 0.7, -0.3};
  const double naive = std::log(std::exp(0.1) + std::exp(0.7) + std::exp(-0.3));
  EXPECT_NEAR(ops::log_sum_exp(x), naive, 1e-12);
}

TEST(Ops, LogSumExpStableForLargeValues) {
  EXPECT_NEAR(ops::log_sum_exp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

// -------------------------------------------------------------- im2col

TEST(Im2Col, GeometryComputesOutputSize) {
  Conv2dGeometry g{1, 5, 5, 3, 3, 1, 0};
  EXPECT_EQ(g.out_h(), 3u);
  EXPECT_EQ(g.out_w(), 3u);
  EXPECT_EQ(g.col_rows(), 9u);
  EXPECT_EQ(g.col_cols(), 9u);
  g.pad = 1;
  EXPECT_EQ(g.out_h(), 5u);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 3u);
}

TEST(Im2Col, GeometryValidation) {
  Conv2dGeometry bad{1, 2, 2, 3, 3, 1, 0};
  EXPECT_THROW(bad.validate(), Error);
  Conv2dGeometry ok{1, 2, 2, 3, 3, 1, 1};
  EXPECT_NO_THROW(ok.validate());
}

TEST(Im2Col, IdentityKernelExtractsPixels) {
  // 1x1 kernel: cols equals the flattened image.
  Conv2dGeometry g{1, 3, 3, 1, 1, 1, 0};
  std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  im2col(g, img.data(), cols);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  Conv2dGeometry g{1, 2, 2, 3, 3, 1, 1};
  std::vector<float> img = {1, 2, 3, 4};
  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  im2col(g, img.data(), cols);
  // Top-left window (kh=0, kw=0) at output (0,0) reads padded (-1,-1) = 0.
  EXPECT_FLOAT_EQ(cols(0, 0), 0.0f);
  // Center tap (kh=1, kw=1) at output (0,0) reads pixel (0,0) = 1.
  EXPECT_FLOAT_EQ(cols(4, 0), 1.0f);
}

TEST(Im2Col, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // adjoint identity that makes conv backward correct.
  Rng rng(11);
  Conv2dGeometry g{2, 6, 6, 3, 3, 2, 1};
  std::vector<float> x(2 * 6 * 6);
  for (auto& v : x) v = rng.uniform_f(-1.0f, 1.0f);
  Tensor y = Tensor::uniform(Shape::of(g.col_rows(), g.col_cols()), rng, -1.0f, 1.0f);

  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  im2col(g, x.data(), cols);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * static_cast<double>(y[i]);
  }

  std::vector<float> back(x.size(), 0.0f);
  col2im(g, y, back.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rhs += static_cast<double>(x[i]) * static_cast<double>(back[i]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2Col, ColsShapeMismatchThrows) {
  Conv2dGeometry g{1, 4, 4, 3, 3, 1, 0};
  std::vector<float> img(16, 0.0f);
  Tensor wrong(Shape::of(3, 3));
  EXPECT_THROW(im2col(g, img.data(), wrong), Error);
}

// ----------------------------------------------------------- serialize

TEST(Serialize, PrimitiveRoundTrip) {
  ByteBuffer buf;
  write_u64(buf, 0xdeadbeefcafef00dULL);
  write_f32(buf, 3.25f);
  write_f64(buf, -1.5e-8);
  ByteReader reader(buf);
  EXPECT_EQ(reader.read_u64(), 0xdeadbeefcafef00dULL);
  EXPECT_FLOAT_EQ(reader.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -1.5e-8);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Serialize, FloatVectorRoundTrip) {
  ByteBuffer buf;
  const std::vector<float> v = {1.0f, -2.5f, 1e-20f, 3e20f};
  write_f32_span(buf, v);
  ByteReader reader(buf);
  EXPECT_EQ(reader.read_f32_vector(), v);
}

TEST(Serialize, TensorRoundTripPreservesShape) {
  Rng rng(13);
  Tensor t = Tensor::uniform(Shape::of(2, 3, 4), rng, -1.0f, 1.0f);
  ByteBuffer buf;
  write_tensor(buf, t);
  ByteReader reader(buf);
  Tensor back = read_tensor(reader);
  EXPECT_EQ(back.shape(), t.shape());
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(back[i], t[i]);
}

TEST(Serialize, TruncatedBufferThrows) {
  ByteBuffer buf;
  write_u64(buf, 42);
  buf.pop_back();
  ByteReader reader(buf);
  EXPECT_THROW(reader.read_u64(), Error);
}

TEST(Serialize, TruncatedVectorThrows) {
  ByteBuffer buf;
  write_f32_span(buf, std::vector<float>{1.0f, 2.0f});
  buf.resize(buf.size() - 3);
  ByteReader reader(buf);
  EXPECT_THROW(reader.read_f32_vector(), Error);
}

TEST(Serialize, RemainingTracksCursor) {
  ByteBuffer buf;
  write_u64(buf, 1);
  write_u64(buf, 2);
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 16u);
  reader.read_u64();
  EXPECT_EQ(reader.remaining(), 8u);
}

}  // namespace
}  // namespace fedcav
