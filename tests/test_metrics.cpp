// Unit tests for src/metrics: evaluation and training history.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/data/synthetic.hpp"
#include "src/metrics/evaluation.hpp"
#include "src/metrics/history.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/error.hpp"

namespace fedcav::metrics {
namespace {

// A two-class dataset an untrained model cannot ace, plus a hand-made
// "oracle" dense model that classifies it perfectly.
data::Dataset two_class_set() {
  data::Dataset ds(Shape::of(1, 2, 2), 2);
  // Class 0: pixel[0] = +1; class 1: pixel[0] = -1.
  for (int i = 0; i < 10; ++i) {
    ds.add_sample(std::vector<float>{1.0f, 0.0f, 0.0f, 0.0f}, 0);
    ds.add_sample(std::vector<float>{-1.0f, 0.0f, 0.0f, 0.0f}, 1);
  }
  return ds;
}

std::unique_ptr<nn::Model> oracle_model() {
  Rng rng(1);
  auto model = nn::make_mlp(4, 4, 2, rng);
  // Craft weights so logit0 = 10·x0 and logit1 = −10·x0 via the two
  // dense layers: set layer-1 to pass x0 through two hidden units with
  // opposite signs (ReLU splits sign), then read them out.
  nn::Weights w(model->num_params(), 0.0f);
  // Layout: dense1.W (4×4), dense1.b (4), dense2.W (2×4), dense2.b (2).
  w[0 * 4 + 0] = 10.0f;   // hidden0 = relu(+10 x0)
  w[1 * 4 + 0] = -10.0f;  // hidden1 = relu(−10 x0)
  const std::size_t d2 = 4 * 4 + 4;
  w[d2 + 0 * 4 + 0] = 1.0f;   // logit0 += hidden0
  w[d2 + 0 * 4 + 1] = -1.0f;  // logit0 -= hidden1
  w[d2 + 1 * 4 + 0] = -1.0f;
  w[d2 + 1 * 4 + 1] = 1.0f;
  model->set_weights(w);
  return model;
}

TEST(Evaluate, OracleScoresPerfectly) {
  data::Dataset ds = two_class_set();
  auto model = oracle_model();
  const EvalResult result = evaluate(*model, ds);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_EQ(result.confusion[0][0], 10u);
  EXPECT_EQ(result.confusion[1][1], 10u);
  EXPECT_EQ(result.confusion[0][1], 0u);
  for (const auto& c : result.per_class) {
    EXPECT_DOUBLE_EQ(c.precision, 1.0);
    EXPECT_DOUBLE_EQ(c.recall, 1.0);
    EXPECT_DOUBLE_EQ(c.f1, 1.0);
    EXPECT_EQ(c.support, 10u);
  }
  EXPECT_DOUBLE_EQ(result.macro_f1(), 1.0);
}

TEST(Evaluate, InvertedOracleScoresZero) {
  data::Dataset ds = two_class_set();
  auto model = oracle_model();
  nn::Weights w = model->get_weights();
  // Flip the output head: every prediction lands on the wrong class.
  const std::size_t d2 = 4 * 4 + 4;
  for (std::size_t i = d2; i < d2 + 8; ++i) w[i] = -w[i];
  model->set_weights(w);
  const EvalResult result = evaluate(*model, ds);
  EXPECT_DOUBLE_EQ(result.accuracy, 0.0);
  EXPECT_EQ(result.confusion[0][1], 10u);
  EXPECT_DOUBLE_EQ(result.macro_f1(), 0.0);
}

TEST(Evaluate, AccuracyShortcutMatchesFullEvaluation) {
  const data::SynthGenerator gen(data::synth_digits_config(5));
  Rng rng(6);
  data::Dataset ds = gen.generate_balanced(4, rng);
  Rng model_rng(7);
  auto model = nn::model_builder("mlp")(model_rng);
  EXPECT_DOUBLE_EQ(accuracy(*model, ds), evaluate(*model, ds).accuracy);
}

TEST(Evaluate, BatchSizeDoesNotChangeResult) {
  const data::SynthGenerator gen(data::synth_digits_config(5));
  Rng rng(6);
  data::Dataset ds = gen.generate_balanced(5, rng);
  Rng model_rng(8);
  auto model = nn::model_builder("mlp")(model_rng);
  const double a = accuracy(*model, ds, 7);
  const double b = accuracy(*model, ds, 50);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NEAR(inference_loss(*model, ds, 7), inference_loss(*model, ds, 50), 1e-6);
}

TEST(Evaluate, InferenceLossOfUniformModelIsLogC) {
  const data::SynthGenerator gen(data::synth_digits_config(5));
  Rng rng(9);
  data::Dataset ds = gen.generate_balanced(3, rng);
  Rng model_rng(10);
  auto model = nn::model_builder("mlp")(model_rng);
  // Zero weights -> uniform logits -> CE = ln(10) exactly.
  model->set_weights(nn::Weights(model->num_params(), 0.0f));
  EXPECT_NEAR(inference_loss(*model, ds), std::log(10.0), 1e-5);
}

TEST(Evaluate, EmptyDatasetThrows) {
  Rng rng(11);
  auto model = nn::model_builder("mlp")(rng);
  data::Dataset empty(Shape::of(1, 14, 14), 10);
  EXPECT_THROW(evaluate(*model, empty), Error);
  EXPECT_THROW(accuracy(*model, empty), Error);
  EXPECT_THROW(inference_loss(*model, empty), Error);
}

// -------------------------------------------------------------- history

RoundRecord rec(std::size_t round, double acc, bool attacked = false) {
  RoundRecord r;
  r.round = round;
  r.test_accuracy = acc;
  r.attacked = attacked;
  return r;
}

TEST(History, BestAccuracyTracksMaximum) {
  TrainingHistory h;
  h.add(rec(1, 0.2));
  h.add(rec(2, 0.8));
  h.add(rec(3, 0.5));
  EXPECT_DOUBLE_EQ(h.best_accuracy(), 0.8);
}

TEST(History, ConvergedAccuracyAveragesWindow) {
  TrainingHistory h;
  for (std::size_t r = 1; r <= 10; ++r) h.add(rec(r, 0.1 * static_cast<double>(r)));
  EXPECT_NEAR(h.converged_accuracy(3), (0.8 + 0.9 + 1.0) / 3.0, 1e-12);
  // Window larger than history: averages everything.
  EXPECT_NEAR(h.converged_accuracy(100), 0.55, 1e-12);
}

TEST(History, RoundsToAccuracyFindsFirstCrossing) {
  TrainingHistory h;
  h.add(rec(1, 0.3));
  h.add(rec(2, 0.6));
  h.add(rec(3, 0.5));
  ASSERT_TRUE(h.rounds_to_accuracy(0.55).has_value());
  EXPECT_EQ(h.rounds_to_accuracy(0.55).value(), 2u);
  EXPECT_FALSE(h.rounds_to_accuracy(0.99).has_value());
}

TEST(History, RecoveryRoundsMeasuresPostAttackClimb) {
  TrainingHistory h;
  h.add(rec(1, 0.7));
  h.add(rec(2, 0.05, /*attacked=*/true));
  h.add(rec(3, 0.2));
  h.add(rec(4, 0.65));  // >= 0.9 × 0.7 = 0.63: recovered here
  ASSERT_TRUE(h.recovery_rounds().has_value());
  EXPECT_EQ(h.recovery_rounds().value(), 2u);
}

TEST(History, RecoveryRoundsWithoutAttackIsEmpty) {
  TrainingHistory h;
  h.add(rec(1, 0.7));
  EXPECT_FALSE(h.recovery_rounds().has_value());
}

TEST(History, RecoveryRoundsUnrecoveredIsEmpty) {
  TrainingHistory h;
  h.add(rec(1, 0.7));
  h.add(rec(2, 0.05, /*attacked=*/true));
  h.add(rec(3, 0.1));
  EXPECT_FALSE(h.recovery_rounds().has_value());
}

TEST(History, CsvHasHeaderAndOneLinePerRound) {
  TrainingHistory h;
  h.add(rec(1, 0.5));
  h.add(rec(2, 0.6));
  std::ostringstream out;
  h.write_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("round,test_accuracy"), std::string::npos);
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 rounds
}

TEST(History, IndexValidation) {
  TrainingHistory h;
  EXPECT_THROW(h[0], Error);
  EXPECT_THROW(h.back(), Error);
  EXPECT_THROW(h.converged_accuracy(), Error);
  h.add(rec(1, 0.5));
  EXPECT_NO_THROW(h[0]);
  EXPECT_DOUBLE_EQ(h.back().test_accuracy, 0.5);
}

}  // namespace
}  // namespace fedcav::metrics
