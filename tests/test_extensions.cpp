// Tests for the extension modules: participant samplers, LR schedules,
// dropout, checkpointing, top-k compression, per-class tracking, and
// config files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "src/comm/compression.hpp"
#include "src/fl/compressed.hpp"
#include "src/fl/sampler.hpp"
#include "src/fl/simulation.hpp"
#include "src/metrics/per_class.hpp"
#include "src/nn/dropout.hpp"
#include "src/nn/schedule.hpp"
#include "src/utils/config.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"

namespace fedcav {
namespace {

// -------------------------------------------------------------- sampler

TEST(Sampler, PolicyNamesRoundTrip) {
  for (const char* name : {"uniform", "roundrobin", "lossbiased"}) {
    EXPECT_EQ(fl::to_string(fl::parse_sampler_policy(name)), name);
  }
  EXPECT_THROW(fl::parse_sampler_policy("greedy"), Error);
}

TEST(Sampler, UniformProducesSortedDistinctCohort) {
  fl::ParticipantSampler sampler(fl::SamplerPolicy::kUniform, 20, 0.3, 1);
  EXPECT_EQ(sampler.cohort_size(), 6u);
  for (int round = 0; round < 20; ++round) {
    const auto picked = sampler.sample();
    EXPECT_EQ(picked.size(), 6u);
    EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
    std::set<std::size_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), picked.size());
    for (std::size_t i : picked) EXPECT_LT(i, 20u);
  }
}

TEST(Sampler, RoundRobinVisitsEveryClientEqually) {
  fl::ParticipantSampler sampler(fl::SamplerPolicy::kRoundRobin, 10, 0.5, 1);
  std::vector<int> visits(10, 0);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i : sampler.sample()) ++visits[i];
  }
  for (int v : visits) EXPECT_EQ(v, 2);
}

TEST(Sampler, LossBiasedPrefersHighLossClients) {
  fl::ParticipantSampler sampler(fl::SamplerPolicy::kLossBiased, 10, 0.2, 7);
  // Client 3 reports an enormous loss; everyone else is tiny.
  std::vector<std::size_t> all(10);
  std::vector<double> losses(10, 0.01);
  for (std::size_t i = 0; i < 10; ++i) all[i] = i;
  losses[3] = 8.0;
  sampler.observe_losses(all, losses);
  int hits = 0;
  const int rounds = 50;
  for (int r = 0; r < rounds; ++r) {
    const auto picked = sampler.sample();
    for (std::size_t i : picked) {
      if (i == 3) ++hits;
    }
  }
  EXPECT_GT(hits, rounds * 9 / 10);  // nearly always selected
}

TEST(Sampler, LossBiasedUnreportedClientsStillSelectable) {
  fl::ParticipantSampler sampler(fl::SamplerPolicy::kLossBiased, 4, 1.0, 7);
  // No observations at all: full-cohort sampling must not throw.
  const auto picked = sampler.sample();
  EXPECT_EQ(picked.size(), 4u);
}

TEST(Sampler, ObserveLossesValidatesInput) {
  fl::ParticipantSampler sampler(fl::SamplerPolicy::kLossBiased, 4, 0.5, 7);
  EXPECT_THROW(sampler.observe_losses({0, 1}, {1.0}), Error);
  EXPECT_THROW(sampler.observe_losses({9}, {1.0}), Error);
}

TEST(Sampler, ValidatesConstruction) {
  EXPECT_THROW(fl::ParticipantSampler(fl::SamplerPolicy::kUniform, 0, 0.5, 1), Error);
  EXPECT_THROW(fl::ParticipantSampler(fl::SamplerPolicy::kUniform, 5, 0.0, 1), Error);
  EXPECT_THROW(fl::ParticipantSampler(fl::SamplerPolicy::kUniform, 5, 1.5, 1), Error);
}

// ------------------------------------------------------------- schedule

TEST(Schedule, ConstantIsFlat) {
  nn::ConstantLr schedule(0.05f);
  EXPECT_FLOAT_EQ(schedule.lr(1), 0.05f);
  EXPECT_FLOAT_EQ(schedule.lr(100), 0.05f);
}

TEST(Schedule, StepDecayHalvesEveryStep) {
  nn::StepDecayLr schedule(0.1f, 5, 0.5f);
  EXPECT_FLOAT_EQ(schedule.lr(1), 0.1f);
  EXPECT_FLOAT_EQ(schedule.lr(5), 0.1f);
  EXPECT_FLOAT_EQ(schedule.lr(6), 0.05f);
  EXPECT_FLOAT_EQ(schedule.lr(11), 0.025f);
}

TEST(Schedule, CosineInterpolatesBaseToFloor) {
  nn::CosineLr schedule(0.1f, 0.01f, 11);
  EXPECT_FLOAT_EQ(schedule.lr(1), 0.1f);
  EXPECT_NEAR(schedule.lr(6), (0.1f + 0.01f) / 2.0f, 1e-6f);  // midpoint
  EXPECT_FLOAT_EQ(schedule.lr(11), 0.01f);
  EXPECT_FLOAT_EQ(schedule.lr(50), 0.01f);  // flat after horizon
}

TEST(Schedule, MonotoneNonIncreasing) {
  for (const char* name : {"constant", "step", "cosine"}) {
    const auto schedule = nn::make_schedule(name, 0.1f, 30);
    float previous = schedule->lr(1);
    for (std::size_t r = 2; r <= 30; ++r) {
      const float current = schedule->lr(r);
      EXPECT_LE(current, previous + 1e-7f) << name << " round " << r;
      previous = current;
    }
  }
}

TEST(Schedule, FactoryRejectsUnknown) {
  EXPECT_THROW(nn::make_schedule("exponential", 0.1f, 10), Error);
}

TEST(Schedule, ValidatesParameters) {
  EXPECT_THROW(nn::ConstantLr(0.0f), Error);
  EXPECT_THROW(nn::StepDecayLr(0.1f, 0, 0.5f), Error);
  EXPECT_THROW(nn::CosineLr(0.1f, 0.2f, 10), Error);
}

// -------------------------------------------------------------- dropout

TEST(Dropout, EvalModeIsIdentity) {
  nn::Dropout layer(0.5f);
  Rng rng(1);
  Tensor input = Tensor::uniform(Shape::of(4, 8), rng, -1.0f, 1.0f);
  Tensor out = layer.forward(input, /*training=*/false);
  for (std::size_t i = 0; i < input.numel(); ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Dropout, TrainingDropsRoughlyPFraction) {
  nn::Dropout layer(0.3f);
  Tensor input(Shape::of(100, 100), 1.0f);
  Tensor out = layer.forward(input, /*training=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) ++zeros;
  }
  const double fraction = static_cast<double>(zeros) / static_cast<double>(out.numel());
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(Dropout, SurvivorsAreScaledUp) {
  nn::Dropout layer(0.5f);
  Tensor input(Shape::of(10, 10), 1.0f);
  Tensor out = layer.forward(input, /*training=*/true);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(out[i] == 0.0f || out[i] == 2.0f);
  }
}

TEST(Dropout, BackwardRoutesThroughSameMask) {
  nn::Dropout layer(0.5f);
  Tensor input(Shape::of(8, 8), 1.0f);
  Tensor out = layer.forward(input, /*training=*/true);
  Tensor grad(out.shape(), 1.0f);
  Tensor dx = layer.backward(grad);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], out[i]);  // same mask, same scaling
  }
}

TEST(Dropout, ZeroProbabilityIsPassThrough) {
  nn::Dropout layer(0.0f);
  Rng rng(2);
  Tensor input = Tensor::uniform(Shape::of(3, 3), rng, -1.0f, 1.0f);
  Tensor out = layer.forward(input, /*training=*/true);
  for (std::size_t i = 0; i < input.numel(); ++i) EXPECT_FLOAT_EQ(out[i], input[i]);
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(nn::Dropout(1.0f), Error);
  EXPECT_THROW(nn::Dropout(-0.1f), Error);
}

// ---------------------------------------------------------- compression

TEST(Compression, TopKKeepsLargestMagnitudes) {
  const std::vector<float> dense = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f};
  const comm::SparseDelta sparse = comm::topk_compress(dense, 0.4);  // k = 2
  ASSERT_EQ(sparse.indices.size(), 2u);
  EXPECT_EQ(sparse.indices[0], 1u);
  EXPECT_EQ(sparse.indices[1], 3u);
  EXPECT_FLOAT_EQ(sparse.values[0], -5.0f);
  EXPECT_FLOAT_EQ(sparse.values[1], 3.0f);
}

TEST(Compression, RatioOneIsLossless) {
  Rng rng(3);
  std::vector<float> dense(100);
  for (auto& v : dense) v = rng.uniform_f(-1.0f, 1.0f);
  const comm::SparseDelta sparse = comm::topk_compress(dense, 1.0);
  EXPECT_EQ(comm::decompress(sparse), dense);
}

TEST(Compression, DecompressZeroFillsDropped) {
  const std::vector<float> dense = {1.0f, 10.0f, 2.0f};
  const comm::SparseDelta sparse = comm::topk_compress(dense, 0.34);  // k = 2
  const std::vector<float> back = comm::decompress(sparse);
  EXPECT_FLOAT_EQ(back[0], 0.0f);
  EXPECT_FLOAT_EQ(back[1], 10.0f);
  EXPECT_FLOAT_EQ(back[2], 2.0f);
}

TEST(Compression, EncodeDecodeRoundTrip) {
  Rng rng(4);
  std::vector<float> dense(500);
  for (auto& v : dense) v = rng.uniform_f(-2.0f, 2.0f);
  const comm::SparseDelta sparse = comm::topk_compress(dense, 0.1);
  const ByteBuffer wire = sparse.encode();
  EXPECT_EQ(wire.size(), sparse.wire_size());
  ByteReader reader(wire);
  const comm::SparseDelta back = comm::SparseDelta::decode(reader);
  EXPECT_EQ(back.dim, sparse.dim);
  EXPECT_EQ(back.indices, sparse.indices);
  EXPECT_EQ(back.values, sparse.values);
}

TEST(Compression, DuplicateMagnitudesSelectDeterministically) {
  // Every entry ties in |value|: the k survivors must be the k lowest
  // indices (the documented tie-break), and the selection must be
  // identical across repeated calls and input copies. Without the
  // tie-break, nth_element's pivot choices make the kept set
  // implementation-defined, which desynchronizes the sparsified wire
  // image between otherwise deterministic runs.
  std::vector<float> dense(64);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = (i % 2 == 0) ? 0.5f : -0.5f;  // equal magnitude, mixed sign
  }
  const comm::SparseDelta first = comm::topk_compress(dense, 0.25);  // k = 16
  ASSERT_EQ(first.indices.size(), 16u);
  for (std::size_t i = 0; i < first.indices.size(); ++i) {
    EXPECT_EQ(first.indices[i], static_cast<std::uint32_t>(i));
  }
  const std::vector<float> copy = dense;
  const comm::SparseDelta second = comm::topk_compress(copy, 0.25);
  EXPECT_EQ(first.indices, second.indices);
  EXPECT_EQ(first.values, second.values);

  // Ties straddling the k-boundary: with [3, 1, 1, 1] and k = 2 the
  // kept set must be {0, 1} — the tied 1.0s resolve by index.
  const std::vector<float> boundary = {3.0f, 1.0f, 1.0f, 1.0f};
  const comm::SparseDelta picked = comm::topk_compress(boundary, 0.5);
  ASSERT_EQ(picked.indices.size(), 2u);
  EXPECT_EQ(picked.indices[0], 0u);
  EXPECT_EQ(picked.indices[1], 1u);
}

TEST(Compression, WireSizeBeatsDenseForSmallRatios) {
  std::vector<float> dense(10000, 1.0f);
  const comm::SparseDelta sparse = comm::topk_compress(dense, 0.1);
  EXPECT_LT(sparse.wire_size(), dense.size() * sizeof(float) / 2);
}

TEST(Compression, AddSparseAccumulates) {
  std::vector<float> y = {1.0f, 1.0f, 1.0f};
  comm::SparseDelta sparse;
  sparse.dim = 3;
  sparse.indices = {0, 2};
  sparse.values = {0.5f, -1.0f};
  comm::add_sparse(y, sparse);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
}

TEST(Compression, ValidatesInput) {
  std::vector<float> dense = {1.0f};
  EXPECT_THROW(comm::topk_compress(dense, 0.0), Error);
  EXPECT_THROW(comm::topk_compress(dense, 1.5), Error);
  EXPECT_THROW(comm::topk_compress(std::vector<float>{}, 0.5), Error);
  comm::SparseDelta bad;
  bad.dim = 2;
  bad.indices = {0};
  bad.values = {1.0f};
  std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(comm::add_sparse(wrong, bad), Error);
}

TEST(CompressedStrategy, RatioOneMatchesInnerExactly) {
  auto plain = fl::make_strategy("fedcav");
  fl::CompressedStrategy lossless(fl::make_strategy("fedcav"), 1.0);
  std::vector<fl::ClientUpdate> updates(3);
  Rng rng(5);
  nn::Weights global(50);
  for (auto& g : global) g = rng.uniform_f(-1.0f, 1.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    updates[i].client_id = i;
    updates[i].inference_loss = rng.uniform(0.5, 2.0);
    updates[i].num_samples = 10;
    updates[i].weights.resize(50);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-1.0f, 1.0f);
  }
  const nn::Weights a = plain->aggregate(global, updates);
  const nn::Weights b = lossless.aggregate(global, updates);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);
  EXPECT_GT(lossless.sparse_bytes(), 0u);
  EXPECT_EQ(lossless.dense_bytes(), 3u * 50 * sizeof(float));
}

TEST(CompressedStrategy, SmallRatioStillAggregatesSanely) {
  fl::CompressedStrategy lossy(fl::make_strategy("fedavg"), 0.05);
  std::vector<fl::ClientUpdate> updates(2);
  nn::Weights global(100, 1.0f);
  for (std::size_t i = 0; i < 2; ++i) {
    updates[i].client_id = i;
    updates[i].num_samples = 10;
    updates[i].inference_loss = 1.0;
    updates[i].weights.assign(100, 1.0f);
    updates[i].weights[7] = 5.0f;  // one big delta coordinate
  }
  const nn::Weights out = lossy.aggregate(global, updates);
  EXPECT_FLOAT_EQ(out[7], 5.0f);   // the top-k coordinate survives
  EXPECT_FLOAT_EQ(out[0], 1.0f);   // dropped deltas reconstruct to global
  EXPECT_LT(lossy.sparse_bytes(), lossy.dense_bytes() / 2);
}

TEST(CompressedStrategy, ValidatesRatio) {
  EXPECT_THROW(fl::CompressedStrategy(fl::make_strategy("fedavg"), 0.0), Error);
  EXPECT_THROW(fl::CompressedStrategy(nullptr, 0.5), Error);
}

// ------------------------------------------------------------ per-class

TEST(PerClassTracker, TracksRecallPerRound) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcav";
  config.train_samples_per_class = 15;
  config.test_samples_per_class = 10;
  config.partition.num_clients = 6;
  config.server.local.lr = 0.05f;
  fl::Simulation sim = fl::build_simulation(config);

  Rng rng(config.seed ^ 0xabcdef12345ULL);
  auto probe = nn::model_builder("mlp")(rng);
  metrics::PerClassTracker tracker(10);
  for (int r = 0; r < 3; ++r) {
    sim.server->run_round();
    probe->set_weights(sim.server->global_weights());
    tracker.record(*probe, sim.test);
  }
  EXPECT_EQ(tracker.rounds(), 3u);
  // Recalls are valid probabilities.
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_GE(tracker.recall(2, c), 0.0);
    EXPECT_LE(tracker.recall(2, c), 1.0);
  }
  const std::vector<std::size_t> group = {0, 1, 2};
  EXPECT_GE(tracker.group_recall(2, group), 0.0);
  EXPECT_LE(tracker.rounds_to_group_recall(group, 2.0), 3u);  // impossible target
}

TEST(PerClassTracker, ValidatesArguments) {
  EXPECT_THROW(metrics::PerClassTracker(0), Error);
  metrics::PerClassTracker tracker(5);
  EXPECT_THROW(tracker.recall(0, 0), Error);
  EXPECT_THROW(tracker.group_recall(0, {}), Error);
}

// ---------------------------------------------------------- checkpoints

TEST(Checkpoint, SaveLoadRoundTripsWeightsAndRound) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 5;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(2);
  const nn::Weights saved_weights = sim.server->global_weights();

  const std::string path = ::testing::TempDir() + "fedcav_ckpt.bin";
  sim.server->save_checkpoint(path);

  sim.server->run(2);  // diverge
  EXPECT_NE(sim.server->global_weights(), saved_weights);

  sim.server->load_checkpoint(path);
  EXPECT_EQ(sim.server->global_weights(), saved_weights);
  EXPECT_EQ(sim.server->current_round(), 2u);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsCorruptFiles) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 5;
  fl::Simulation sim = fl::build_simulation(config);

  const std::string path = ::testing::TempDir() + "fedcav_bad_ckpt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(sim.server->load_checkpoint(path), Error);
  EXPECT_THROW(sim.server->load_checkpoint(path + ".missing"), Error);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- server

TEST(ServerExtensions, LrScheduleAndSamplerPolicyRun) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 6;
  config.server.sampler = fl::SamplerPolicy::kLossBiased;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->set_lr_schedule(nn::make_schedule("cosine", 0.05f, 6));
  sim.server->run(3);
  EXPECT_EQ(sim.server->history().rounds(), 3u);
}

// --------------------------------------------------------------- config

TEST(Config, ParsesTypedValuesAndComments) {
  const Config config = Config::from_string(
      "# experiment\n"
      "rounds = 50\n"
      "lr= 0.05  # inline comment\n"
      "dataset =digits\n"
      "detect = true\n"
      "\n");
  EXPECT_EQ(config.size(), 4u);
  EXPECT_EQ(config.get_int("rounds"), 50);
  EXPECT_DOUBLE_EQ(config.get_double("lr"), 0.05);
  EXPECT_EQ(config.get_string("dataset"), "digits");
  EXPECT_TRUE(config.get_bool("detect"));
}

TEST(Config, MissingAndMalformedKeysThrow) {
  const Config config = Config::from_string("x = hello\n");
  EXPECT_THROW(config.get_string("missing"), Error);
  EXPECT_THROW(config.get_int("x"), Error);
  EXPECT_THROW(config.get_double("x"), Error);
  EXPECT_THROW(config.get_bool("x"), Error);
}

TEST(Config, DefaultsApplyWhenAbsent) {
  const Config config = Config::from_string("a = 1\n");
  EXPECT_EQ(config.get_int("a", 9), 1);
  EXPECT_EQ(config.get_int("b", 9), 9);
  EXPECT_EQ(config.get_string("c", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(config.get_double("d", 2.5), 2.5);
  EXPECT_TRUE(config.get_bool("e", true));
}

TEST(Config, MalformedLineThrowsWithLineNumber) {
  try {
    Config::from_string("ok = 1\nbroken line\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Config, SetAndRenderRoundTrip) {
  Config config;
  config.set("zeta", "26");
  config.set("alpha", "1");
  const std::string text = config.to_string();
  EXPECT_EQ(text, "alpha = 1\nzeta = 26\n");  // sorted keys
  const Config back = Config::from_string(text);
  EXPECT_EQ(back.get_int("alpha"), 1);
  EXPECT_EQ(back.get_int("zeta"), 26);
}

TEST(Config, FromFileReadsAndValidates) {
  const std::string path = ::testing::TempDir() + "fedcav_config_test.cfg";
  {
    std::ofstream out(path);
    out << "rounds = 7\n";
  }
  const Config config = Config::from_file(path);
  EXPECT_EQ(config.get_int("rounds"), 7);
  std::remove(path.c_str());
  EXPECT_THROW(Config::from_file(path), Error);
}

}  // namespace
}  // namespace fedcav
