// Property suite for the wire layer: Envelope framing, message codecs,
// and the serialize primitives underneath them. Mass-generated cases
// (see tests/property.hpp; FEDCAV_PROP_CASES / FEDCAV_PROP_SEED) pin:
//   * encode → decode is the identity for every message type;
//   * any single-bit or single-byte in-flight mutation of a frame is
//     rejected (CRC-32 detects all bursts shorter than its width);
//   * any strict prefix of a frame is rejected;
//   * decoding attacker-controlled bytes never crashes and never throws
//     anything but fedcav::Error — including length prefixes crafted to
//     overflow size arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/comm/compression.hpp"
#include "src/comm/message.hpp"
#include "src/tensor/serialize.hpp"
#include "src/utils/error.hpp"
#include "property.hpp"

namespace fedcav {
namespace {

using comm::Envelope;
using comm::MessageType;
using proptest::gen_bytes;
using proptest::gen_floats;

Envelope gen_envelope(Rng& rng) {
  Envelope env;
  env.type = static_cast<MessageType>(1 + rng.uniform_int(std::uint64_t{7}));
  env.payload = gen_bytes(rng, 256);
  return env;
}

TEST(PropertyWire, EnvelopeRoundTrip) {
  FEDCAV_PROPERTY("envelope round-trip", 2000, [](Rng& rng) {
    const Envelope env = gen_envelope(rng);
    const ByteBuffer wire = env.encode();
    ASSERT_EQ(wire.size(), env.wire_size());

    const std::optional<Envelope> lenient = Envelope::try_decode(wire);
    ASSERT_TRUE(lenient.has_value());
    EXPECT_EQ(lenient->type, env.type);
    EXPECT_EQ(lenient->payload, env.payload);

    const Envelope strict = Envelope::decode(wire);
    EXPECT_EQ(strict.type, env.type);
    EXPECT_EQ(strict.payload, env.payload);
  });
}

TEST(PropertyWire, SingleBitFlipIsAlwaysRejected) {
  FEDCAV_PROPERTY("single-bit flip rejected", 2000, [](Rng& rng) {
    const Envelope env = gen_envelope(rng);
    ByteBuffer wire = env.encode();
    const std::size_t byte = static_cast<std::size_t>(rng.uniform_int(wire.size()));
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(std::uint64_t{8}));
    EXPECT_FALSE(Envelope::try_decode(wire).has_value())
        << "flipped bit in byte " << byte << " of " << wire.size()
        << " survived the CRC";
  });
}

TEST(PropertyWire, SingleByteMutationIsAlwaysRejected) {
  FEDCAV_PROPERTY("single-byte mutation rejected", 2000, [](Rng& rng) {
    const Envelope env = gen_envelope(rng);
    ByteBuffer wire = env.encode();
    const std::size_t byte = static_cast<std::size_t>(rng.uniform_int(wire.size()));
    const auto old = wire[byte];
    do {
      wire[byte] = static_cast<std::uint8_t>(rng.uniform_int(256));
    } while (wire[byte] == old);
    // An 8-bit burst is strictly shorter than the CRC width, so
    // detection is a guarantee, not a probability.
    EXPECT_FALSE(Envelope::try_decode(wire).has_value());
  });
}

TEST(PropertyWire, TruncatedFrameIsAlwaysRejected) {
  FEDCAV_PROPERTY("truncated frame rejected", 1000, [](Rng& rng) {
    const Envelope env = gen_envelope(rng);
    ByteBuffer wire = env.encode();
    wire.resize(static_cast<std::size_t>(rng.uniform_int(wire.size())));
    EXPECT_FALSE(Envelope::try_decode(wire).has_value());
  });
}

TEST(PropertyWire, RandomBufferFuzzNeverCrashes) {
  FEDCAV_PROPERTY("try_decode random-buffer fuzz", 5000, [](Rng& rng) {
    const ByteBuffer wire = gen_bytes(rng, 64);
    // Lenient decode must return cleanly (a coincidental CRC pass on
    // random bytes has probability 2^-32 per case and a pinned seed, so
    // acceptance is not asserted against)...
    const std::optional<Envelope> lenient = Envelope::try_decode(wire);
    // ...and strict decode must agree with it: same envelope, or a
    // fedcav::Error exactly when the lenient path said nullopt.
    try {
      const Envelope strict = Envelope::decode(wire);
      ASSERT_TRUE(lenient.has_value());
      EXPECT_EQ(strict.type, lenient->type);
      EXPECT_EQ(strict.payload, lenient->payload);
    } catch (const Error&) {
      EXPECT_FALSE(lenient.has_value());
    }
  });
}

template <typename Msg>
void fuzz_decode(Rng& rng, std::size_t max_len) {
  const ByteBuffer bytes = gen_bytes(rng, max_len);
  ByteReader reader(bytes);
  try {
    (void)Msg::decode(reader);
  } catch (const Error&) {
    // rejected cleanly — the only acceptable failure mode
  }
  // anything else (std::bad_alloc from a hostile length, segfault, UB)
  // escapes and fails the test
}

TEST(PropertyWire, MessageDecodersRejectGarbageCleanly) {
  FEDCAV_PROPERTY("message decode fuzz", 2000, [](Rng& rng) {
    fuzz_decode<comm::MetadataMsg>(rng, 64);
    fuzz_decode<comm::GlobalModelMsg>(rng, 64);
    fuzz_decode<comm::ClientReportMsg>(rng, 96);
    fuzz_decode<comm::ControlMsg>(rng, 32);
    fuzz_decode<comm::NackMsg>(rng, 32);
    fuzz_decode<comm::QuantizedDelta>(rng, 96);
    fuzz_decode<comm::QuantGlobalModelMsg>(rng, 96);
    fuzz_decode<comm::QuantReportMsg>(rng, 128);
  });
}

// ---- Quantized wire codec (DESIGN.md §13) --------------------------

comm::QuantMode gen_quant_mode(Rng& rng) {
  return rng.bernoulli(0.5) ? comm::QuantMode::kFp16 : comm::QuantMode::kInt8;
}

TEST(PropertyWire, QuantizedDeltaRoundTripIsIdentity) {
  FEDCAV_PROPERTY("quantized delta wire round-trip", 500, [](Rng& rng) {
    const std::vector<float> dense = gen_floats(rng, 600);
    if (dense.empty()) return;
    const comm::QuantMode mode = gen_quant_mode(rng);
    const double keep = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.05, 1.0);
    const comm::QuantizedDelta q = comm::quantize(dense, mode, keep);

    const ByteBuffer wire = q.encode();
    ASSERT_EQ(wire.size(), q.wire_size());
    ByteReader reader(wire);
    const comm::QuantizedDelta out = comm::QuantizedDelta::decode(reader);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(out.mode, q.mode);
    EXPECT_EQ(out.dim, q.dim);
    EXPECT_EQ(out.mask, q.mask);
    EXPECT_EQ(out.scales, q.scales);
    EXPECT_EQ(out.zero_points, q.zero_points);
    EXPECT_EQ(out.data, q.data);
    // Dense codes omit the bitmap; sparse codes keep exactly ⌈keep·dim⌉.
    if (keep == 1.0) {
      EXPECT_TRUE(q.mask.empty());
      EXPECT_EQ(q.count(), dense.size());
    } else {
      const auto k = static_cast<std::size_t>(
          std::ceil(keep * static_cast<double>(dense.size())));
      EXPECT_EQ(q.count(), std::max<std::size_t>(1, k));
    }
  });
}

TEST(PropertyWire, QuantizeFp16ObeysHalfPrecisionErrorBound) {
  FEDCAV_PROPERTY("fp16 quantization error bound", 500, [](Rng& rng) {
    std::vector<float> dense(1 + rng.uniform_int(std::uint64_t{512}));
    for (float& v : dense) v = rng.uniform_f(-100.0f, 100.0f);
    const comm::QuantizedDelta q = comm::quantize(dense, comm::QuantMode::kFp16);
    const std::vector<float> out = comm::dequantize(q);
    for (std::size_t i = 0; i < dense.size(); ++i) {
      // Half precision: 11-bit significand → relative error ≤ 2^-11 for
      // normal values; absolute error ≤ 2^-25 in the subnormal range.
      const double bound =
          std::max(std::abs(static_cast<double>(dense[i])) * 0x1p-11, 0x1p-25);
      EXPECT_LE(std::abs(static_cast<double>(out[i]) - static_cast<double>(dense[i])),
                bound)
          << "v=" << dense[i] << " decoded=" << out[i];
    }
  });
}

TEST(PropertyWire, QuantizeInt8ObeysHalfStepErrorBound) {
  FEDCAV_PROPERTY("int8 quantization error bound", 500, [](Rng& rng) {
    std::vector<float> dense(1 + rng.uniform_int(std::uint64_t{700}));
    const float span = rng.uniform_f(1e-3f, 10.0f);
    for (float& v : dense) v = rng.uniform_f(-span, span);
    const comm::QuantizedDelta q = comm::quantize(dense, comm::QuantMode::kInt8);
    const std::vector<float> out = comm::dequantize(q);
    for (std::size_t i = 0; i < dense.size(); ++i) {
      // Affine rounding lands within half a step of the true value; the
      // slack covers the f32 evaluation of zero + scale·code.
      const double scale = static_cast<double>(q.scales[i / comm::kQuantBlock]);
      const double bound =
          0.5 * scale + 1e-6 * (scale + std::abs(static_cast<double>(dense[i])));
      EXPECT_LE(std::abs(static_cast<double>(out[i]) - static_cast<double>(dense[i])),
                bound)
          << "v=" << dense[i] << " decoded=" << out[i] << " scale=" << scale;
    }
  });
}

TEST(PropertyWire, QuantizeIsIdempotentOnItsOwnReconstruction) {
  FEDCAV_PROPERTY("quantize idempotence", 300, [](Rng& rng) {
    std::vector<float> dense(1 + rng.uniform_int(std::uint64_t{512}));
    for (float& v : dense) v = rng.uniform_f(-5.0f, 5.0f);

    // fp16: every reconstructed value is exactly representable, so a
    // second pass reproduces the first bit-for-bit.
    const std::vector<float> once =
        comm::dequantize(comm::quantize(dense, comm::QuantMode::kFp16));
    const std::vector<float> twice =
        comm::dequantize(comm::quantize(once, comm::QuantMode::kFp16));
    EXPECT_EQ(once, twice);

    // int8: the second pass re-derives block parameters from the
    // reconstruction, so it is not bit-exact — but its error against the
    // first reconstruction must stay within the first code's step size
    // (the code never degrades by re-coding).
    const comm::QuantizedDelta q1 = comm::quantize(dense, comm::QuantMode::kInt8);
    const std::vector<float> r1 = comm::dequantize(q1);
    const std::vector<float> r2 =
        comm::dequantize(comm::quantize(r1, comm::QuantMode::kInt8));
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const double step = static_cast<double>(q1.scales[i / comm::kQuantBlock]);
      EXPECT_LE(std::abs(static_cast<double>(r2[i]) - static_cast<double>(r1[i])),
                0.5 * step + 1e-6);
    }
  });
}

TEST(PropertyWire, QuantizeTopKDropsOnlySmallestAndKeepsExactBudget) {
  FEDCAV_PROPERTY("quantized top-k selection", 300, [](Rng& rng) {
    std::vector<float> dense(8 + rng.uniform_int(std::uint64_t{256}));
    for (float& v : dense) v = rng.uniform_f(-1.0f, 1.0f);
    const double keep = rng.uniform(0.05, 0.95);
    const comm::QuantizedDelta q =
        comm::quantize(dense, gen_quant_mode(rng), keep);
    const std::vector<float> out = comm::dequantize(q);
    ASSERT_EQ(q.mask.size(), (dense.size() + 7) / 8);
    // Every kept coordinate's |v| must be >= every dropped one's.
    float min_kept = std::numeric_limits<float>::infinity();
    float max_dropped = 0.0f;
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const bool kept = (q.mask[i / 8] >> (i % 8)) & 1u;
      if (kept) {
        min_kept = std::min(min_kept, std::abs(dense[i]));
      } else {
        max_dropped = std::max(max_dropped, std::abs(dense[i]));
        EXPECT_EQ(out[i], 0.0f) << "dropped coordinate reconstructed nonzero";
      }
    }
    EXPECT_GE(min_kept, max_dropped);
  });
}

TEST(PropertyWire, QuantizedDeltaBitFlipDecodesSafely) {
  FEDCAV_PROPERTY("quantized delta bit-flip fuzz", 1000, [](Rng& rng) {
    std::vector<float> dense(1 + rng.uniform_int(std::uint64_t{128}));
    for (float& v : dense) v = rng.uniform_f(-2.0f, 2.0f);
    const double keep = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.1, 1.0);
    ByteBuffer wire = comm::quantize(dense, gen_quant_mode(rng), keep).encode();
    const std::size_t byte = static_cast<std::size_t>(rng.uniform_int(wire.size()));
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(std::uint64_t{8}));
    // In the real protocol the envelope CRC rejects this before decode
    // ever runs; the codec itself must still never crash or read out of
    // bounds on a mutated image — either a clean fedcav::Error or a
    // structurally consistent delta whose reconstruction is safe.
    ByteReader reader(wire);
    try {
      const comm::QuantizedDelta q = comm::QuantizedDelta::decode(reader);
      const std::vector<float> out = comm::dequantize(q);
      EXPECT_EQ(out.size(), q.dim);
    } catch (const Error&) {
      // rejected cleanly
    }
  });
}

// The regression the fuzz originally caught: a length prefix near 2^64
// made `n * sizeof(float)` wrap back into range inside read_f32_vector,
// so the bound check passed and the reader allocated and read far past
// the buffer. The guard now divides instead of multiplying.
TEST(PropertyWire, HostileLengthPrefixThrowsInsteadOfOverflowing) {
  for (const std::uint64_t n :
       {std::uint64_t{1} << 62, (std::uint64_t{1} << 62) + 1,
        std::uint64_t{0xffffffffffffffffULL}, std::uint64_t{1} << 32}) {
    ByteBuffer bytes;
    write_u64(bytes, n);
    write_f32(bytes, 1.0f);  // a few real bytes so remaining() > 0
    ByteReader reader(bytes);
    EXPECT_THROW((void)reader.read_f32_vector(), Error) << "n=" << n;
  }
}

TEST(PropertyWire, MetadataRoundTripThroughEnvelope) {
  FEDCAV_PROPERTY("metadata round-trip", 1000, [](Rng& rng) {
    comm::MetadataMsg msg;
    msg.round = rng.next_u64();
    msg.client_id = rng.next_u64();
    msg.num_samples = rng.next_u64();
    msg.inference_loss = rng.uniform(-1e30, 1e30);

    Envelope env;
    env.type = MessageType::kMetadataReport;
    env.payload = msg.encode();
    const std::optional<Envelope> decoded = Envelope::try_decode(env.encode());
    ASSERT_TRUE(decoded.has_value());
    ByteReader reader(decoded->payload);
    const comm::MetadataMsg out = comm::MetadataMsg::decode(reader);
    EXPECT_EQ(out.round, msg.round);
    EXPECT_EQ(out.client_id, msg.client_id);
    EXPECT_EQ(out.num_samples, msg.num_samples);
    EXPECT_EQ(out.inference_loss, msg.inference_loss);
  });
}

TEST(PropertyWire, SerializePrimitivesRoundTrip) {
  FEDCAV_PROPERTY("serialize primitives round-trip", 1000, [](Rng& rng) {
    const std::uint8_t u8 = static_cast<std::uint8_t>(rng.uniform_int(256));
    const auto u32 = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint64_t u64 = rng.next_u64();
    const float f32 = rng.uniform_f(-1e30f, 1e30f);
    const double f64 = rng.uniform(-1e300, 1e300);
    const std::vector<float> vec = gen_floats(rng, 32);

    ByteBuffer buf;
    write_u8(buf, u8);
    write_u32(buf, u32);
    write_u64(buf, u64);
    write_f32(buf, f32);
    write_f64(buf, f64);
    write_f32_span(buf, vec);  // writes its own u64 length prefix

    ByteReader reader(buf);
    EXPECT_EQ(reader.read_u8(), u8);
    EXPECT_EQ(reader.read_u32(), u32);
    EXPECT_EQ(reader.read_u64(), u64);
    EXPECT_EQ(reader.read_f32(), f32);
    EXPECT_EQ(reader.read_f64(), f64);
    EXPECT_EQ(reader.read_f32_vector(), vec);
    EXPECT_TRUE(reader.exhausted());
  });
}

TEST(PropertyWire, RngStateRoundTripResumesStream) {
  FEDCAV_PROPERTY("rng state round-trip", 1000, [](Rng& rng) {
    Rng subject(rng.next_u64());
    // Warm the Box-Muller cache on half the cases so both cache states
    // are exercised.
    if (rng.bernoulli(0.5)) (void)subject.normal();

    ByteBuffer buf;
    write_rng_state(buf, subject.state());
    ByteReader reader(buf);
    Rng restored(0);
    restored.set_state(read_rng_state(reader));

    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(restored.next_u64(), subject.next_u64());
    }
    EXPECT_EQ(restored.normal(), subject.normal());
  });
}

}  // namespace
}  // namespace fedcav
