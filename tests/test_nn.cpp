// Unit tests for src/nn: gradient checks for every layer and loss,
// optimizer semantics, flat weight exchange, and the model zoo.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activation.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/init.hpp"
#include "src/nn/loss.hpp"
#include "src/nn/model.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/pool2d.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/error.hpp"
#include "tests/test_helpers.hpp"

namespace fedcav::nn {
namespace {

using testing::gradient_check_layer;
using testing::gradient_check_loss;

constexpr double kGradTolerance = 2e-2;  // float32 forward, 1e-3 step

// ----------------------------------------------------- gradient checks

TEST(GradCheck, Dense) {
  Rng rng(1);
  Dense layer(6, 4, rng);
  Tensor input = Tensor::uniform(Shape::of(3, 6), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, Conv2DNoPadding) {
  Rng rng(2);
  Conv2D layer(2, 3, 3, 1, 0, 5, 5, rng);
  Tensor input = Tensor::uniform(Shape::of(2, 2, 5, 5), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, Conv2DWithPaddingAndStride) {
  Rng rng(3);
  Conv2D layer(1, 2, 3, 2, 1, 6, 6, rng);
  Tensor input = Tensor::uniform(Shape::of(2, 1, 6, 6), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

// Post-kernel-swap guards: shapes chosen to straddle the GEMM register
// tile (4×16) in every dimension — batch 5 (edge m-tile), out 17 (edge
// n-panel), in 65 (k just past a vector multiple) — so a packing or
// edge-tile bug that still produces plausible-looking activations fails
// the finite-difference check.
TEST(GradCheck, DenseEdgeTileShapes) {
  Rng rng(17);
  Dense layer(65, 17, rng);
  Tensor input = Tensor::uniform(Shape::of(5, 65), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, DenseSingleRowAndColumn) {
  Rng rng(18);
  Dense layer(130, 3, rng);
  Tensor input = Tensor::uniform(Shape::of(1, 130), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, Conv2DEdgeTileChannels) {
  // col_rows = 3·3·3 = 27 and 5 output channels: both k and m land off
  // the tile grid; col_cols = 36 crosses two 16-wide B panels.
  Rng rng(19);
  Conv2D layer(3, 5, 3, 1, 1, 6, 6, rng);
  Tensor input = Tensor::uniform(Shape::of(2, 3, 6, 6), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, ReLU) {
  Rng rng(4);
  ReLU layer;
  // Keep values away from the kink at 0 where the numeric gradient lies.
  Tensor input = Tensor::uniform(Shape::of(4, 7), rng, 0.2f, 1.0f);
  for (std::size_t i = 0; i < input.numel(); i += 2) input[i] = -input[i];
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, LeakyReLU) {
  Rng rng(5);
  LeakyReLU layer(0.1f);
  Tensor input = Tensor::uniform(Shape::of(4, 7), rng, 0.2f, 1.0f);
  for (std::size_t i = 1; i < input.numel(); i += 2) input[i] = -input[i];
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, Tanh) {
  Rng rng(6);
  Tanh layer;
  Tensor input = Tensor::uniform(Shape::of(3, 5), rng, -1.5f, 1.5f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, MaxPool) {
  Rng rng(7);
  MaxPool2D layer(2, 2);
  // Distinct values avoid argmax ties that break the numeric gradient.
  Tensor input(Shape::of(2, 2, 4, 4));
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(i % 13) * 0.37f + static_cast<float>(i) * 0.011f;
  }
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, AvgPool) {
  Rng rng(8);
  AvgPool2D layer(2, 2);
  Tensor input = Tensor::uniform(Shape::of(2, 2, 4, 4), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(9);
  GlobalAvgPool layer;
  Tensor input = Tensor::uniform(Shape::of(2, 3, 4, 4), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, Flatten) {
  Rng rng(10);
  Flatten layer;
  Tensor input = Tensor::uniform(Shape::of(2, 2, 3, 3), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), kGradTolerance);
}

TEST(GradCheck, ResidualBlockIdentitySkip) {
  Rng rng(11);
  ResidualBlock layer(2, 2, 1, 5, 5, rng);
  Tensor input = Tensor::uniform(Shape::of(1, 2, 5, 5), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(layer, input), 5e-2);
}

TEST(GradCheck, ResidualBlockProjectedSkip) {
  Rng rng(12);
  ResidualBlock layer(2, 4, 2, 6, 6, rng);
  Tensor input = Tensor::uniform(Shape::of(1, 2, 6, 6), rng, -1.0f, 1.0f);
  // Looser bound: two stacked in-block ReLUs put some pre-activations
  // near the kink, where the central difference is systematically off.
  EXPECT_LT(gradient_check_layer(layer, input), 1e-1);
}

TEST(GradCheck, SequentialComposite) {
  Rng rng(13);
  Sequential net;
  net.add(std::make_unique<Dense>(5, 8, rng));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Dense>(8, 3, rng));
  Tensor input = Tensor::uniform(Shape::of(2, 5), rng, -1.0f, 1.0f);
  EXPECT_LT(gradient_check_layer(net, input), kGradTolerance);
}

TEST(GradCheck, SoftmaxCrossEntropyLoss) {
  Rng rng(14);
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::uniform(Shape::of(4, 6), rng, -2.0f, 2.0f);
  const std::vector<std::size_t> labels = {0, 3, 5, 2};
  EXPECT_LT(gradient_check_loss(loss, logits, labels), kGradTolerance);
}

TEST(GradCheck, FocalLoss) {
  Rng rng(15);
  FocalLoss loss(2.0f);
  Tensor logits = Tensor::uniform(Shape::of(3, 5), rng, -2.0f, 2.0f);
  const std::vector<std::size_t> labels = {1, 4, 0};
  EXPECT_LT(gradient_check_loss(loss, logits, labels), 5e-2);
}

TEST(GradCheck, MseLoss) {
  Rng rng(16);
  MseLoss loss;
  Tensor logits = Tensor::uniform(Shape::of(3, 4), rng, -1.0f, 1.0f);
  const std::vector<std::size_t> labels = {0, 2, 3};
  EXPECT_LT(gradient_check_loss(loss, logits, labels), kGradTolerance);
}

// ---------------------------------------------------------- layer APIs

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(20);
  Dense layer(3, 2, rng);
  // Zero the weights; output must equal the bias.
  for (ParamView p : layer.params()) p.value->fill(0.0f);
  layer.params()[1].value->operator()(0) = 1.5f;
  Tensor input(Shape::of(2, 3), 1.0f);
  Tensor out = layer.forward(input, false);
  EXPECT_EQ(out.shape(), Shape::of(2, 2));
  EXPECT_FLOAT_EQ(out(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out(1, 1), 0.0f);
}

TEST(Dense, RejectsWrongInputWidth) {
  Rng rng(21);
  Dense layer(3, 2, rng);
  Tensor bad(Shape::of(2, 4));
  EXPECT_THROW(layer.forward(bad, false), Error);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Rng rng(22);
  Dense layer(3, 2, rng);
  Tensor grad(Shape::of(2, 2));
  EXPECT_THROW(layer.backward(grad), Error);
}

TEST(Conv2D, OutputGeometry) {
  Rng rng(23);
  Conv2D conv(1, 4, 5, 1, 2, 14, 14, rng);
  EXPECT_EQ(conv.out_h(), 14u);
  EXPECT_EQ(conv.out_w(), 14u);
  Tensor input(Shape::of(2, 1, 14, 14), 0.5f);
  Tensor out = conv.forward(input, false);
  EXPECT_EQ(out.shape(), Shape::of(2, 4, 14, 14));
}

TEST(Conv2D, GradientsAccumulateAcrossBackwards) {
  Rng rng(24);
  Conv2D conv(1, 1, 3, 1, 0, 4, 4, rng);
  Tensor input = Tensor::uniform(Shape::of(1, 1, 4, 4), rng, -1.0f, 1.0f);
  Tensor out = conv.forward(input, true);
  Tensor ones(out.shape(), 1.0f);
  conv.backward(ones);
  const float after_one = (*conv.params()[0].grad)[0];
  conv.forward(input, true);
  conv.backward(ones);
  EXPECT_NEAR((*conv.params()[0].grad)[0], 2.0f * after_one, 1e-4f);
  conv.zero_grad();
  EXPECT_FLOAT_EQ((*conv.params()[0].grad)[0], 0.0f);
}

TEST(MaxPool, ForwardSelectsWindowMax) {
  MaxPool2D pool(2, 2);
  Tensor input(Shape::of(1, 1, 2, 2), std::vector<float>{1, 9, 3, 4});
  Tensor out = pool.forward(input, true);
  EXPECT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 9.0f);
  // Gradient routes only to the max position.
  Tensor g(out.shape(), 2.0f);
  Tensor dx = pool.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
}

TEST(AvgPool, ForwardAveragesWindow) {
  AvgPool2D pool(2, 2);
  Tensor input(Shape::of(1, 1, 2, 2), std::vector<float>{1, 2, 3, 6});
  Tensor out = pool.forward(input, false);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(GlobalAvgPool, ReducesToPerChannelMean) {
  GlobalAvgPool pool;
  Tensor input(Shape::of(1, 2, 2, 2),
               std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  Tensor out = pool.forward(input, false);
  EXPECT_EQ(out.shape(), Shape::of(1, 2));
  EXPECT_FLOAT_EQ(out(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out(0, 1), 25.0f);
}

TEST(Sequential, EmptyContainerThrows) {
  Sequential net;
  Tensor input(Shape::of(1, 2));
  EXPECT_THROW(net.forward(input, false), Error);
}

TEST(Sequential, CloneIsDeepAndPreservesWeights) {
  Rng rng(25);
  Sequential net;
  net.add(std::make_unique<Dense>(3, 2, rng));
  auto copy = net.clone();
  // Same weights now...
  Tensor input = Tensor::uniform(Shape::of(1, 3), rng, -1.0f, 1.0f);
  Tensor out_a = net.forward(input, false);
  Tensor out_b = copy->forward(input, false);
  for (std::size_t i = 0; i < out_a.numel(); ++i) EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
  // ...independent storage after mutation.
  net.params()[0].value->fill(0.0f);
  Tensor out_c = copy->forward(input, false);
  for (std::size_t i = 0; i < out_b.numel(); ++i) EXPECT_FLOAT_EQ(out_b[i], out_c[i]);
}

TEST(Activation, ReLUZeroesNegatives) {
  ReLU relu;
  Tensor input(Shape::of(1, 4), std::vector<float>{-1, 0, 2, -3});
  Tensor out = relu.forward(input, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

// --------------------------------------------------------------- model

TEST(Model, WeightRoundTrip) {
  Rng rng(30);
  auto model = make_mlp(4, 6, 3, rng);
  const Weights w = model->get_weights();
  EXPECT_EQ(w.size(), model->num_params());
  Weights changed = w;
  for (auto& v : changed) v += 1.0f;
  model->set_weights(changed);
  const Weights back = model->get_weights();
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_FLOAT_EQ(back[i], w[i] + 1.0f);
}

TEST(Model, SetWeightsValidatesSize) {
  Rng rng(31);
  auto model = make_mlp(4, 6, 3, rng);
  Weights wrong(model->num_params() + 1, 0.0f);
  EXPECT_THROW(model->set_weights(wrong), Error);
}

TEST(Model, CloneSharesNothing) {
  Rng rng(32);
  auto model = make_mlp(4, 6, 3, rng);
  auto copy = model->clone();
  EXPECT_EQ(copy->num_params(), model->num_params());
  Weights w = model->get_weights();
  Weights zeros(w.size(), 0.0f);
  model->set_weights(zeros);
  const Weights copy_w = copy->get_weights();
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_FLOAT_EQ(copy_w[i], w[i]);
}

TEST(Model, ForwardBackwardLeavesGradients) {
  Rng rng(33);
  auto model = make_mlp(4, 6, 3, rng);
  Tensor input = Tensor::uniform(Shape::of(2, 4), rng, -1.0f, 1.0f);
  const std::vector<std::size_t> labels = {0, 2};
  model->forward_backward(input, labels);
  const Weights grads = model->get_gradients();
  double norm = 0.0;
  for (float g : grads) norm += std::abs(static_cast<double>(g));
  EXPECT_GT(norm, 0.0);
  model->zero_grad();
  const Weights zeroed = model->get_gradients();
  for (float g : zeroed) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(Model, ComputeLossMatchesManualEvaluation) {
  Rng rng(34);
  auto model = make_mlp(4, 6, 3, rng);
  Tensor input = Tensor::uniform(Shape::of(2, 4), rng, -1.0f, 1.0f);
  const std::vector<std::size_t> labels = {1, 1};
  const float loss = model->compute_loss(input, labels);
  Tensor logits = model->predict(input);
  SoftmaxCrossEntropy ce;
  EXPECT_NEAR(loss, ce.forward(logits, labels), 1e-6f);
}

// ------------------------------------------------------------ optimizer

TEST(Sgd, VanillaStepDescendsGradient) {
  Rng rng(40);
  auto model = make_mlp(2, 2, 2, rng);
  const Weights before = model->get_weights();
  Tensor input(Shape::of(1, 2), std::vector<float>{1.0f, -1.0f});
  model->forward_backward(input, {0});
  const Weights grads = model->get_gradients();
  Sgd opt(SgdConfig{.lr = 0.1f});
  opt.step(*model);
  const Weights after = model->get_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] - 0.1f * grads[i], 1e-5f);
  }
}

TEST(Sgd, StepZeroesGradients) {
  Rng rng(41);
  auto model = make_mlp(2, 2, 2, rng);
  Tensor input(Shape::of(1, 2), std::vector<float>{1.0f, 0.5f});
  model->forward_backward(input, {1});
  Sgd opt(SgdConfig{.lr = 0.1f});
  opt.step(*model);
  for (float g : model->get_gradients()) EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(Sgd, MomentumAcceleratesRepeatedGradients) {
  // Two identical gradient steps: with momentum the second step moves
  // farther than the first.
  Rng rng(42);
  auto model_a = make_mlp(2, 2, 2, rng);
  auto model_b = model_a->clone();
  Tensor input(Shape::of(1, 2), std::vector<float>{1.0f, 1.0f});

  Sgd plain(SgdConfig{.lr = 0.05f});
  Sgd momentum(SgdConfig{.lr = 0.05f, .momentum = 0.9f});

  model_a->forward_backward(input, {0});
  plain.step(*model_a);
  model_b->forward_backward(input, {0});
  momentum.step(*model_b);

  const Weights wa1 = model_a->get_weights();
  const Weights wb1 = model_b->get_weights();

  model_a->forward_backward(input, {0});
  plain.step(*model_a);
  model_b->forward_backward(input, {0});
  momentum.step(*model_b);

  // Compare step-2 displacements.
  const Weights wa2 = model_a->get_weights();
  const Weights wb2 = model_b->get_weights();
  double disp_a = 0.0;
  double disp_b = 0.0;
  for (std::size_t i = 0; i < wa1.size(); ++i) {
    disp_a += std::abs(static_cast<double>(wa2[i] - wa1[i]));
    disp_b += std::abs(static_cast<double>(wb2[i] - wb1[i]));
  }
  EXPECT_GT(disp_b, disp_a);
}

TEST(Sgd, ProximalTermPullsTowardAnchor) {
  // With zero data gradient (we never call forward_backward) and a prox
  // anchor at zero, the step shrinks weights toward the anchor.
  Rng rng(43);
  auto model = make_mlp(2, 2, 2, rng);
  const Weights before = model->get_weights();
  Sgd opt(SgdConfig{.lr = 0.5f, .prox_mu = 0.1f});
  const Weights anchor(model->num_params(), 0.0f);
  opt.set_prox_anchor(anchor);
  opt.step(*model);
  const Weights after = model->get_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] * (1.0f - 0.5f * 0.1f), 1e-5f);
  }
}

TEST(Sgd, ProxWithoutAnchorThrows) {
  Rng rng(44);
  auto model = make_mlp(2, 2, 2, rng);
  Sgd opt(SgdConfig{.lr = 0.1f, .prox_mu = 0.1f});
  EXPECT_THROW(opt.step(*model), Error);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Rng rng(45);
  auto model = make_mlp(2, 2, 2, rng);
  const Weights before = model->get_weights();
  Sgd opt(SgdConfig{.lr = 1.0f, .weight_decay = 0.01f});
  opt.step(*model);
  const Weights after = model->get_weights();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] * 0.99f, 1e-5f);
  }
}

TEST(Sgd, RejectsBadConfig) {
  EXPECT_THROW(Sgd(SgdConfig{.lr = 0.0f}), Error);
  EXPECT_THROW(Sgd(SgdConfig{.lr = 0.1f, .momentum = 1.0f}), Error);
  EXPECT_THROW(Sgd(SgdConfig{.lr = 0.1f, .prox_mu = -0.1f}), Error);
}

TEST(Adam, ConvergesOnToyProblem) {
  // Minimize CE on one example; Adam should drive the loss down fast.
  Rng rng(46);
  auto model = make_mlp(2, 4, 2, rng);
  Adam opt(AdamConfig{.lr = 0.05f});
  Tensor input(Shape::of(1, 2), std::vector<float>{0.5f, -0.25f});
  float first = 0.0f;
  float last = 0.0f;
  for (int i = 0; i < 50; ++i) {
    last = model->forward_backward(input, {1});
    if (i == 0) first = last;
    opt.step(*model);
  }
  EXPECT_LT(last, first * 0.1f);
}

TEST(Adam, RejectsBadConfig) {
  EXPECT_THROW(Adam(AdamConfig{.lr = -1.0f}), Error);
  EXPECT_THROW(Adam(AdamConfig{.lr = 0.1f, .beta1 = 1.0f}), Error);
}

// ------------------------------------------------------------------ zoo

TEST(Zoo, LeNetAcceptsGrayImages) {
  Rng rng(50);
  auto model = make_lenet5_lite(rng);
  Tensor input(Shape::of(2, 1, 14, 14), 0.1f);
  Tensor out = model->predict(input);
  EXPECT_EQ(out.shape(), Shape::of(2, kNumClasses));
}

TEST(Zoo, Cnn9AcceptsGrayImages) {
  Rng rng(51);
  auto model = make_cnn9_lite(rng);
  Tensor input(Shape::of(2, 1, 14, 14), 0.1f);
  EXPECT_EQ(model->predict(input).shape(), Shape::of(2, kNumClasses));
}

TEST(Zoo, ResNetAcceptsColorImages) {
  Rng rng(52);
  auto model = make_resnet_lite(rng);
  Tensor input(Shape::of(2, 3, 16, 16), 0.1f);
  EXPECT_EQ(model->predict(input).shape(), Shape::of(2, kNumClasses));
}

TEST(Zoo, ParamCountsAreStable) {
  // Architecture regression guards: aggregation weight vectors and bench
  // byte accounting depend on these exact sizes.
  Rng rng(53);
  EXPECT_EQ(make_lenet5_lite(rng)->num_params(), 12502u);
  EXPECT_GT(make_cnn9_lite(rng)->num_params(), 10000u);
  EXPECT_GT(make_resnet_lite(rng)->num_params(), 10000u);
}

TEST(Zoo, BuilderLookupKnownAndUnknown) {
  Rng rng(54);
  for (const char* name : {"mlp", "lenet5", "cnn9", "resnet"}) {
    EXPECT_NE(model_builder(name)(rng), nullptr) << name;
  }
  EXPECT_THROW(model_builder("vgg"), Error);
}

TEST(Zoo, BuilderProducesIndependentInstances) {
  Rng rng_a(55);
  Rng rng_b(55);
  auto a = model_builder("mlp")(rng_a);
  auto b = model_builder("mlp")(rng_b);
  // Same seed -> same init.
  const Weights wa = a->get_weights();
  const Weights wb = b->get_weights();
  for (std::size_t i = 0; i < wa.size(); ++i) EXPECT_FLOAT_EQ(wa[i], wb[i]);
}

// ------------------------------------------------------------------ init

TEST(Init, XavierBoundsRespectFans) {
  Rng rng(60);
  Tensor w(Shape::of(64, 64));
  xavier_uniform(w, 64, 64, rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    EXPECT_GE(w[i], -bound);
    EXPECT_LE(w[i], bound);
  }
}

TEST(Init, HeNormalVarianceMatchesFanIn) {
  Rng rng(61);
  Tensor w(Shape::of(200, 100));
  he_normal(w, 100, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    sq += static_cast<double>(w[i]) * static_cast<double>(w[i]);
  }
  EXPECT_NEAR(sq / static_cast<double>(w.numel()), 2.0 / 100.0, 2e-3);
}

// ------------------------------------------------------------------ loss

TEST(Loss, CrossEntropyOfUniformLogitsIsLogC) {
  SoftmaxCrossEntropy ce;
  Tensor logits(Shape::of(2, 10), 0.0f);
  const float loss = ce.forward(logits, {3, 7});
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5f);
}

TEST(Loss, CrossEntropyRejectsBadLabels) {
  SoftmaxCrossEntropy ce;
  Tensor logits(Shape::of(1, 3), 0.0f);
  EXPECT_THROW(ce.forward(logits, {3}), Error);
  EXPECT_THROW(ce.forward(logits, {0, 1}), Error);
}

TEST(Loss, FocalWithZeroGammaMatchesCrossEntropy) {
  Rng rng(62);
  Tensor logits = Tensor::uniform(Shape::of(3, 5), rng, -2.0f, 2.0f);
  const std::vector<std::size_t> labels = {0, 2, 4};
  SoftmaxCrossEntropy ce;
  FocalLoss focal(0.0f);
  EXPECT_NEAR(ce.forward(logits, labels), focal.forward(logits, labels), 1e-5f);
}

TEST(Loss, FocalDownweightsEasyExamples) {
  // A confidently-correct example contributes much less under focal loss.
  Tensor easy(Shape::of(1, 2), std::vector<float>{8.0f, -8.0f});
  SoftmaxCrossEntropy ce;
  FocalLoss focal(2.0f);
  EXPECT_LT(focal.forward(easy, {0}), ce.forward(easy, {0}) + 1e-9f);
}

TEST(Loss, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.backward(), Error);
  FocalLoss focal;
  EXPECT_THROW(focal.backward(), Error);
  MseLoss mse;
  EXPECT_THROW(mse.backward(), Error);
}

TEST(Loss, MseOfPerfectOneHotIsZero) {
  MseLoss mse;
  Tensor logits(Shape::of(1, 3), std::vector<float>{0.0f, 1.0f, 0.0f});
  EXPECT_NEAR(mse.forward(logits, {1}), 0.0f, 1e-7f);
}

}  // namespace
}  // namespace fedcav::nn
