// Unit tests for src/fl: strategies, client local updates, the server
// round loop, centralized baseline, and the simulation builder.
#include <gtest/gtest.h>

#include <cmath>

#include "src/fl/centralized.hpp"
#include "src/fl/client.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/fedprox.hpp"
#include "src/data/stats.hpp"
#include "src/fl/simulation.hpp"
#include "src/metrics/evaluation.hpp"
#include "src/utils/error.hpp"

namespace fedcav::fl {
namespace {

ClientUpdate make_update(std::size_t id, std::vector<float> weights,
                         std::size_t samples, double loss = 1.0) {
  ClientUpdate u;
  u.client_id = id;
  u.weights = std::move(weights);
  u.num_samples = samples;
  u.inference_loss = loss;
  return u;
}

data::Dataset small_corpus(std::size_t per_class = 8, const char* name = "digits") {
  const data::SynthGenerator gen(data::synth_config_by_name(name, 99));
  Rng rng(4);
  return gen.generate_balanced(per_class, rng);
}

SimulationConfig tiny_config() {
  SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcav";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 6;
  config.partition.num_clients = 6;
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.server.sample_ratio = 0.5;
  config.server.local.epochs = 2;
  config.server.local.batch_size = 8;
  config.server.local.lr = 0.05f;
  config.seed = 77;
  return config;
}

// -------------------------------------------------------------- FedAvg

TEST(FedAvg, WeightsProportionalToSampleCounts) {
  FedAvg strategy;
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}, 30));
  updates.push_back(make_update(1, {1.0f}, 10));
  const auto gamma = strategy.aggregation_weights(updates);
  EXPECT_NEAR(gamma[0], 0.75, 1e-12);
  EXPECT_NEAR(gamma[1], 0.25, 1e-12);
}

TEST(FedAvg, AggregateIsSampleWeightedMean) {
  FedAvg strategy;
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {4.0f, 0.0f}, 30));
  updates.push_back(make_update(1, {0.0f, 4.0f}, 10));
  const nn::Weights out = strategy.aggregate({0.0f, 0.0f}, updates);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
}

TEST(FedAvg, IgnoresInferenceLoss) {
  FedAvg strategy;
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f}, 10, /*loss=*/100.0));
  updates.push_back(make_update(1, {1.0f}, 10, /*loss=*/0.01));
  const auto gamma = strategy.aggregation_weights(updates);
  EXPECT_NEAR(gamma[0], gamma[1], 1e-12);
}

TEST(FedAvg, RejectsDegenerateInput) {
  FedAvg strategy;
  EXPECT_THROW(strategy.aggregation_weights({}), Error);
  std::vector<ClientUpdate> zero_samples;
  zero_samples.push_back(make_update(0, {1.0f}, 0));
  EXPECT_THROW(strategy.aggregation_weights(zero_samples), Error);
}

TEST(WeightedAverage, ValidatesDimensions) {
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {1.0f, 2.0f}, 1));
  updates.push_back(make_update(1, {1.0f}, 1));
  EXPECT_THROW(weighted_average(updates, {0.5, 0.5}), Error);
  updates.pop_back();
  EXPECT_THROW(weighted_average(updates, {0.5, 0.5}), Error);  // weight count
}

TEST(WeightedAverage, UsesDoubleAccumulation) {
  // Many tiny contributions must not be lost to float rounding.
  std::vector<ClientUpdate> updates;
  std::vector<double> weights;
  for (std::size_t i = 0; i < 1000; ++i) {
    updates.push_back(make_update(i, {1.0f}, 1));
    weights.push_back(1.0 / 1000.0);
  }
  const nn::Weights out = weighted_average(updates, weights);
  EXPECT_NEAR(out[0], 1.0f, 1e-6f);
}

// -------------------------------------------- incremental aggregation

std::vector<ClientUpdate> random_cohort(std::size_t n, std::size_t dim,
                                        Rng& rng) {
  std::vector<ClientUpdate> updates;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<float> w(dim);
    for (auto& v : w) v = rng.uniform_f(-2.0f, 2.0f);
    updates.push_back(make_update(i, std::move(w), 5 + i * 3,
                                  0.1 + 0.4 * static_cast<double>(i)));
  }
  return updates;
}

std::vector<ClientUpdate> scalars_only(const std::vector<ClientUpdate>& updates) {
  std::vector<ClientUpdate> meta = updates;
  for (auto& m : meta) m.weights.clear();
  return meta;
}

// The acceptance bar for the streaming path: folding updates one at a
// time must reproduce the one-shot weighted_average BIT-exactly — same
// doubles, same float casts, same order — or golden runs would shift.
void expect_incremental_matches_one_shot(AggregationStrategy& one_shot,
                                         AggregationStrategy& incremental,
                                         bool expect_streaming) {
  Rng rng(0xabc);
  const std::size_t dim = 257;
  std::vector<float> global(dim);
  for (auto& v : global) v = rng.uniform_f(-1.0f, 1.0f);
  const std::vector<ClientUpdate> updates = random_cohort(7, dim, rng);

  const nn::Weights direct = one_shot.aggregate(global, updates);

  EXPECT_EQ(incremental.streaming_aggregation(), expect_streaming);
  incremental.begin_aggregation(global, scalars_only(updates));
  for (const auto& u : updates) incremental.accumulate(u);
  const nn::Weights streamed = incremental.finish_aggregation();

  ASSERT_EQ(streamed.size(), direct.size());
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(streamed[i], direct[i]) << "component " << i << " diverged";
  }
}

TEST(Streaming, FedAvgIncrementalIsBitIdenticalToOneShot) {
  FedAvg a;
  FedAvg b;
  expect_incremental_matches_one_shot(a, b, /*expect_streaming=*/true);
}

TEST(Streaming, FedCavIncrementalIsBitIdenticalToOneShot) {
  auto a = make_strategy("fedcav");
  auto b = make_strategy("fedcav");
  expect_incremental_matches_one_shot(*a, *b, /*expect_streaming=*/true);
}

TEST(Streaming, BufferedDefaultMatchesAggregateForNonStreamingStrategies) {
  // Robust rules can't stream (order statistics need every update); the
  // base-class incremental path must buffer and reproduce aggregate().
  auto a = make_strategy("median");
  auto b = make_strategy("median");
  expect_incremental_matches_one_shot(*a, *b, /*expect_streaming=*/false);
}

TEST(Streaming, AccumulateValidatesProtocol) {
  FedAvg strategy;
  // finish before begin / fold-count mismatch must throw, not UB.
  EXPECT_THROW(strategy.finish_aggregation(), Error);
  std::vector<ClientUpdate> meta;
  meta.push_back(make_update(0, {}, 10));
  meta.push_back(make_update(1, {}, 10));
  strategy.begin_aggregation({1.0f, 2.0f}, meta);
  strategy.accumulate(make_update(0, {1.0f, 1.0f}, 10));
  EXPECT_THROW(strategy.finish_aggregation(), Error);  // one fold missing
}

// ------------------------------------------------------------- FedProx

TEST(FedProx, InjectsProximalTermIntoLocalConfig) {
  FedProx strategy(0.05f);
  LocalTrainConfig config;
  EXPECT_FLOAT_EQ(config.prox_mu, 0.0f);
  strategy.apply_local_overrides(config);
  EXPECT_FLOAT_EQ(config.prox_mu, 0.05f);
}

TEST(FedProx, AggregationMatchesFedAvg) {
  FedProx prox(0.01f);
  FedAvg avg;
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(0, {2.0f}, 5));
  updates.push_back(make_update(1, {6.0f}, 15));
  const nn::Weights a = prox.aggregate({0.0f}, updates);
  const nn::Weights b = avg.aggregate({0.0f}, updates);
  EXPECT_FLOAT_EQ(a[0], b[0]);
}

TEST(FedProx, RejectsNonPositiveMu) { EXPECT_THROW(FedProx(0.0f), Error); }

// ------------------------------------------------------------ factory

TEST(StrategyFactory, BuildsAllKnownStrategies) {
  EXPECT_EQ(make_strategy("fedavg")->name(), "FedAvg");
  EXPECT_NE(make_strategy("fedprox")->name().find("FedProx"), std::string::npos);
  EXPECT_NE(make_strategy("fedcav")->name().find("clip=mean"), std::string::npos);
  EXPECT_NE(make_strategy("fedcav-noclip")->name().find("clip=none"), std::string::npos);
  EXPECT_THROW(make_strategy("fedsgd"), Error);
}

// -------------------------------------------------------------- Client

TEST(Client, LocalUpdateReportsPretrainingLoss) {
  Rng rng(5);
  data::Dataset corpus = small_corpus();
  auto model = nn::model_builder("mlp")(rng);
  const nn::Weights global = model->get_weights();
  Client client(0, corpus, Rng(6));

  LocalTrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.lr = 0.05f;
  const ClientUpdate update = client.local_update(*model, global, config);

  // The reported loss is f_i(w_t) — of the *downloaded* model, before
  // training. Recompute it independently.
  Rng rng2(5);
  auto probe = nn::model_builder("mlp")(rng2);
  probe->set_weights(global);
  EXPECT_NEAR(update.inference_loss, metrics::inference_loss(*probe, corpus), 1e-6);
  EXPECT_EQ(update.num_samples, corpus.size());
  EXPECT_EQ(update.client_id, 0u);
}

TEST(Client, TrainingChangesWeightsAndReducesLoss) {
  Rng rng(7);
  data::Dataset corpus = small_corpus();
  auto model = nn::model_builder("mlp")(rng);
  const nn::Weights global = model->get_weights();
  Client client(1, corpus, Rng(8));

  LocalTrainConfig config;
  config.epochs = 5;
  config.batch_size = 10;
  config.lr = 0.05f;
  const ClientUpdate update = client.local_update(*model, global, config);

  EXPECT_NE(update.weights, global);
  // Post-training loss on local data must beat the pre-training loss.
  Rng rng2(7);
  auto probe = nn::model_builder("mlp")(rng2);
  probe->set_weights(update.weights);
  EXPECT_LT(metrics::inference_loss(*probe, corpus), update.inference_loss);
}

TEST(Client, DeterministicGivenIdenticalRngState) {
  data::Dataset corpus = small_corpus();
  Rng rng_a(9);
  Rng rng_b(9);
  // Replicas are interchangeable: two different model instances (even
  // differently initialized) must produce bit-identical updates, because
  // local work always starts from set_weights(global).
  auto model_a = nn::model_builder("mlp")(rng_a);
  auto model_b = nn::model_builder("mlp")(rng_b);
  const nn::Weights global = model_a->get_weights();
  Client a(0, corpus, Rng(10));
  Client b(0, corpus, Rng(10));
  LocalTrainConfig config;
  config.epochs = 2;
  const ClientUpdate ua = a.local_update(*model_a, global, config);
  const ClientUpdate ub = b.local_update(*model_b, global, config);
  EXPECT_EQ(ua.weights, ub.weights);
  EXPECT_DOUBLE_EQ(ua.inference_loss, ub.inference_loss);
}

TEST(Client, ProximalTermKeepsUpdateCloserToGlobal) {
  data::Dataset corpus = small_corpus();
  Rng rng_a(11);
  Rng rng_b(11);
  auto model_a = nn::model_builder("mlp")(rng_a);
  auto model_b = nn::model_builder("mlp")(rng_b);
  const nn::Weights global = model_a->get_weights();
  Client plain(0, corpus, Rng(12));
  Client prox(0, corpus, Rng(12));

  LocalTrainConfig config;
  config.epochs = 5;
  config.lr = 0.05f;
  const ClientUpdate u_plain = plain.local_update(*model_a, global, config);
  config.prox_mu = 0.5f;
  const ClientUpdate u_prox = prox.local_update(*model_b, global, config);

  auto distance = [&](const nn::Weights& w) {
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double d = static_cast<double>(w[i]) - static_cast<double>(global[i]);
      acc += d * d;
    }
    return std::sqrt(acc);
  };
  EXPECT_LT(distance(u_prox.weights), distance(u_plain.weights));
}

TEST(Client, RejectsEmptyDataAndBadConfig) {
  Rng rng(13);
  data::Dataset corpus = small_corpus();
  EXPECT_THROW(Client(0, data::Dataset(corpus.sample_shape(), 10), Rng(1)), Error);
  auto model = nn::model_builder("mlp")(rng);
  const nn::Weights global = model->get_weights();
  Client client(0, corpus, Rng(1));
  LocalTrainConfig config;
  config.epochs = 0;
  EXPECT_THROW(client.local_update(*model, global, config), Error);
}

TEST(Client, SetLocalDataSwapsShard) {
  data::Dataset corpus = small_corpus();
  Client client(0, corpus, Rng(1));
  data::Dataset bigger = small_corpus(12);
  client.set_local_data(bigger);
  EXPECT_EQ(client.num_samples(), bigger.size());
  EXPECT_THROW(client.set_local_data(data::Dataset(corpus.sample_shape(), 10)), Error);
}

// -------------------------------------------------------------- Server

TEST(Server, RoundProducesHistoryRecord) {
  Simulation sim = build_simulation(tiny_config());
  const metrics::RoundRecord rec = sim.server->run_round();
  EXPECT_EQ(rec.round, 1u);
  EXPECT_EQ(rec.participants, 3u);  // 6 clients × q=0.5
  EXPECT_GT(rec.test_accuracy, 0.0);
  EXPECT_GT(rec.mean_inference_loss, 0.0);
  EXPECT_GE(rec.max_inference_loss, rec.mean_inference_loss);
  EXPECT_EQ(sim.server->history().rounds(), 1u);
}

TEST(Server, RunExecutesRequestedRounds) {
  Simulation sim = build_simulation(tiny_config());
  sim.server->run(3);
  EXPECT_EQ(sim.server->history().rounds(), 3u);
  EXPECT_EQ(sim.server->current_round(), 3u);
}

TEST(Server, DeterministicGivenSeed) {
  Simulation a = build_simulation(tiny_config());
  Simulation b = build_simulation(tiny_config());
  a.server->run(2);
  b.server->run(2);
  EXPECT_EQ(a.server->global_weights(), b.server->global_weights());
  EXPECT_DOUBLE_EQ(a.server->history()[1].test_accuracy,
                   b.server->history()[1].test_accuracy);
}

TEST(Server, NetworkMetersWeightTraffic) {
  SimulationConfig config = tiny_config();
  config.server.use_network = true;
  Simulation sim = build_simulation(config);
  const metrics::RoundRecord rec = sim.server->run_round();
  const std::size_t weight_bytes = sim.server->global_weights().size() * sizeof(float);
  // Downlink: one global model per participant (plus framing).
  EXPECT_GT(rec.bytes_down, rec.participants * weight_bytes);
  // Uplink: one report per participant; at least the weights payload.
  EXPECT_GT(rec.bytes_up, rec.participants * weight_bytes);
  // Framing overhead is tiny compared to the weights.
  EXPECT_LT(rec.bytes_down, rec.participants * (weight_bytes + 256));
}

TEST(Server, DisablingNetworkSkipsAccounting) {
  SimulationConfig config = tiny_config();
  config.server.use_network = false;
  Simulation sim = build_simulation(config);
  const metrics::RoundRecord rec = sim.server->run_round();
  EXPECT_EQ(rec.bytes_down, 0u);
  EXPECT_EQ(rec.bytes_up, 0u);
  EXPECT_EQ(sim.server->network(), nullptr);
}

TEST(Server, NetworkAndDirectPathsAgree) {
  // Serialization must be lossless: identical training outcome whether
  // weights travel through the fabric or not.
  SimulationConfig with_net = tiny_config();
  with_net.server.use_network = true;
  SimulationConfig without_net = tiny_config();
  without_net.server.use_network = false;
  Simulation a = build_simulation(with_net);
  Simulation b = build_simulation(without_net);
  a.server->run(2);
  b.server->run(2);
  EXPECT_EQ(a.server->global_weights(), b.server->global_weights());
}

TEST(Server, SetGlobalWeightsValidatesSize) {
  Simulation sim = build_simulation(tiny_config());
  nn::Weights wrong(sim.server->global_weights().size() + 1, 0.0f);
  EXPECT_THROW(sim.server->set_global_weights(wrong), Error);
}

TEST(Server, RedistributeDataValidatesCount) {
  Simulation sim = build_simulation(tiny_config());
  std::vector<data::Dataset> wrong(2);
  EXPECT_THROW(sim.server->redistribute_data(std::move(wrong)), Error);
}

TEST(Server, SampleRatioValidation) {
  SimulationConfig config = tiny_config();
  config.server.sample_ratio = 0.0;
  EXPECT_THROW(build_simulation(config), Error);
  config.server.sample_ratio = 1.5;
  EXPECT_THROW(build_simulation(config), Error);
}

// --------------------------------------------------------- centralized

TEST(Centralized, LossDecreasesOverRounds) {
  SimulationConfig config = tiny_config();
  auto trainer = build_centralized(config);
  trainer->run(4);
  const auto& history = trainer->history();
  EXPECT_EQ(history.rounds(), 4u);
  EXPECT_LT(history[3].test_loss, history[0].test_loss);
  EXPECT_GT(history[3].test_accuracy, history[0].test_accuracy);
}

TEST(Centralized, BeatsUntrainedBaseline) {
  SimulationConfig config = tiny_config();
  auto trainer = build_centralized(config);
  trainer->run(5);
  EXPECT_GT(trainer->history().best_accuracy(), 0.5);
}

// ---------------------------------------------------------- simulation

TEST(Simulation, BuilderHonorsPartitionScheme) {
  SimulationConfig config = tiny_config();
  config.partition.scheme = data::PartitionScheme::kIidBalanced;
  Simulation sim = build_simulation(config);
  EXPECT_EQ(sim.partition.size(), config.partition.num_clients);
  // IID: every client sees most classes.
  const auto counts = data::classes_per_client(sim.train, sim.partition);
  for (std::size_t c : counts) EXPECT_GE(c, 5u);
}

TEST(Simulation, BuilderValidatesConfig) {
  SimulationConfig config = tiny_config();
  config.train_samples_per_class = 0;
  EXPECT_THROW(build_simulation(config), Error);
  config = tiny_config();
  config.attack = "replacement";  // attack_rounds missing
  EXPECT_THROW(build_simulation(config), Error);
  config = tiny_config();
  config.attack = "martian";
  config.attack_rounds = {2};
  EXPECT_THROW(build_simulation(config), Error);
  config = tiny_config();
  config.strategy = "unknown";
  EXPECT_THROW(build_simulation(config), Error);
}

TEST(Simulation, TrainAndTestAreDisjointStreams) {
  Simulation sim = build_simulation(tiny_config());
  // Same generator, different RNG streams: no bitwise-identical images.
  bool any_equal = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(sim.train.size(), 20); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(sim.test.size(), 20); ++j) {
      if (sim.train.pixels(i)[0] == sim.test.pixels(j)[0]) any_equal = true;
    }
  }
  EXPECT_FALSE(any_equal);
}

}  // namespace
}  // namespace fedcav::fl
