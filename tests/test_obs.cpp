// Observability subsystem: span tracing, the chrome://tracing exporter,
// the metrics registry, and the end-to-end phase-accounting contract
// (per-round phase spans sum to ~the round wall time).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/fl/simulation.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav {
namespace {

/// Every test runs against the process-wide tracer/registry, so each
/// starts from a clean slate and leaves telemetry off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
    obs::registry().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Tracer::instance().clear();
    obs::registry().reset();
  }
};

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  {
    obs::Span span("should_not_appear", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTest, EnabledSpanRecordsOneEvent) {
  obs::set_enabled(true);
  {
    obs::Span span("unit_of_work", "test");
    EXPECT_TRUE(span.active());
    span.arg("round", 7.0);
  }
  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit_of_work");
  EXPECT_STREQ(events[0].cat, "test");
  ASSERT_NE(events[0].arg_key, nullptr);
  EXPECT_STREQ(events[0].arg_key, "round");
  EXPECT_EQ(events[0].arg_value, 7.0);
}

TEST_F(ObsTest, NullNameSpanIsInert) {
  obs::set_enabled(true);
  {
    obs::Span span(static_cast<const char*>(nullptr), "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTest, SpansFromManyThreadsAllSurvive) {
  obs::set_enabled(true);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpansPerThread = 50;
  const std::size_t before = obs::Tracer::instance().event_count();
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("threaded", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::Tracer::instance().event_count() - before, kThreads * kSpansPerThread);
}

TEST_F(ObsTest, ChromeTraceHasCompleteEventSchema) {
  obs::set_enabled(true);
  {
    obs::Span span("traced \"op\"", "test");
    span.arg("k", 3.0);
  }
  std::ostringstream out;
  obs::Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // The quote inside the span name must be escaped.
  EXPECT_NE(json.find("traced \\\"op\\\""), std::string::npos);
  EXPECT_EQ(json.find("traced \"op\""), std::string::npos);
}

TEST_F(ObsTest, CountersAccumulateAcrossThreads) {
  obs::Counter& counter = obs::registry().counter("test.concurrent");
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), 4 * kPerThread);
  // Same name returns the same instrument.
  EXPECT_EQ(&obs::registry().counter("test.concurrent"), &counter);
}

TEST_F(ObsTest, HistogramTracksExactMomentsAndCoarseQuantiles) {
  obs::Histogram& h = obs::registry().histogram("test.hist");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Log-bucketed quantiles carry at most a factor-of-2 error.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
}

TEST_F(ObsTest, SummaryJsonListsEveryInstrumentKind) {
  obs::registry().counter("test.c").add(3);
  obs::registry().gauge("test.g").set(1.5);
  obs::registry().histogram("test.h").observe(2.0);
  const std::string json = obs::registry().summary_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.c\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.g\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ------------------------------------------------ end-to-end accounting

TEST_F(ObsTest, RoundPhaseSpansAccountForRoundWallTime) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 5;
  config.server.telemetry = true;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(3);

  // The acceptance contract: phase timings partition run_round, so their
  // sum must land within 10% of the measured round wall time.
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_GT(rec.phases.local_update, 0.0);
    EXPECT_GT(rec.phases.eval, 0.0);
    EXPECT_GE(rec.wall_seconds, rec.phases.sum() * 0.999);
    EXPECT_LE(rec.wall_seconds - rec.phases.sum(), 0.1 * rec.wall_seconds);
  }

  // The trace mirrors the phases: every expected span name shows up.
  std::ostringstream out;
  obs::Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  for (const char* name : {"\"round\"", "\"sample\"", "\"broadcast\"",
                           "\"local_update\"", "\"detect\"", "\"aggregate\"",
                           "\"eval\"", "\"participant\"", "\"inference_loss\"",
                           "\"local_epochs\"", "\"forward\"", "\"backward\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span " << name;
  }

  // GEMM and pool instruments were bumped by the run.
  EXPECT_GT(obs::registry().counter("gemm.calls").value(), 0u);
  EXPECT_GT(obs::registry().counter("gemm.flops").value(), 0u);
  EXPECT_GT(obs::registry().counter("pool.tasks_completed").value(), 0u);
  EXPECT_GT(obs::registry().gauge("comm.bytes_sent").value(), 0.0);
}

TEST_F(ObsTest, DisabledRunLeavesNoTelemetry) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 4;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
  EXPECT_EQ(obs::registry().counter("gemm.calls").value(), 0u);
  // Phase stopwatches still run — they are not gated on telemetry.
  EXPECT_GT(sim.server->history().back().phases.sum(), 0.0);
}

TEST_F(ObsTest, WriteTelemetryEmitsBothFiles) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 4;
  config.server.telemetry = true;
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(1);

  const std::string trace_path = ::testing::TempDir() + "fedcav_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "fedcav_metrics.json";
  sim.server->write_telemetry(trace_path, metrics_path);

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream metrics_text;
  metrics_text << metrics.rdbuf();
  EXPECT_NE(metrics_text.str().find("\"counters\""), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace fedcav
