#include "tests/test_helpers.hpp"

#include <algorithm>

namespace fedcav::testing {

namespace {

double half_sum_squares(const Tensor& t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    acc += 0.5 * static_cast<double>(t[i]) * static_cast<double>(t[i]);
  }
  return acc;
}

}  // namespace

double gradient_check_layer(nn::Layer& layer, const Tensor& input, double eps) {
  // Analytic pass: L = Σ out²/2, dL/dout = out.
  Tensor mutable_input = input;
  layer.zero_grad();
  Tensor out = layer.forward(mutable_input, /*training=*/true);
  Tensor grad_out = out;
  Tensor grad_in = layer.backward(grad_out);

  double max_err = 0.0;

  // Input gradients (spot-check every element for small inputs, strided
  // sample for large ones to keep runtime bounded).
  {
    std::vector<float> x(input.span().begin(), input.span().end());
    const std::size_t stride = std::max<std::size_t>(1, x.size() / 64);
    for (std::size_t i = 0; i < x.size(); i += stride) {
      auto f = [&] {
        Tensor probe(input.shape(), x);
        Tensor o = layer.forward(probe, /*training=*/false);
        return half_sum_squares(o);
      };
      const double num = numerical_grad(f, x, i, eps);
      max_err = std::max(max_err, rel_error(static_cast<double>(grad_in[i]), num));
    }
  }

  // Parameter gradients.
  for (nn::ParamView p : layer.params()) {
    float* data = p.value->data();
    const std::size_t n = p.value->numel();
    const std::size_t stride = std::max<std::size_t>(1, n / 64);
    for (std::size_t i = 0; i < n; i += stride) {
      const float saved = data[i];
      auto f = [&] {
        Tensor probe = input;
        Tensor o = layer.forward(probe, /*training=*/false);
        return half_sum_squares(o);
      };
      data[i] = saved + static_cast<float>(eps);
      const double up = f();
      data[i] = saved - static_cast<float>(eps);
      const double down = f();
      data[i] = saved;
      const double num = (up - down) / (2.0 * eps);
      max_err = std::max(max_err, rel_error(static_cast<double>((*p.grad)[i]), num));
    }
  }
  return max_err;
}

Tensor naive_matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  const std::size_t m = trans_a ? a.shape()[1] : a.shape()[0];
  const std::size_t k = trans_a ? a.shape()[0] : a.shape()[1];
  const std::size_t n = trans_b ? b.shape()[0] : b.shape()[1];
  Tensor c(Shape::of(m, n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a(kk, i) : a(i, kk);
        const float bv = trans_b ? b(j, kk) : b(kk, j);
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

double gradient_check_loss(nn::Loss& loss, const Tensor& logits,
                           const std::vector<std::size_t>& labels, double eps) {
  Tensor mutable_logits = logits;
  (void)loss.forward(mutable_logits, labels);
  Tensor analytic = loss.backward();

  double max_err = 0.0;
  std::vector<float> x(logits.span().begin(), logits.span().end());
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto f = [&] {
      Tensor probe(logits.shape(), x);
      return static_cast<double>(loss.forward(probe, labels));
    };
    const double num = numerical_grad(f, x, i, eps);
    max_err = std::max(max_err, rel_error(static_cast<double>(analytic[i]), num));
  }
  return max_err;
}

}  // namespace fedcav::testing
