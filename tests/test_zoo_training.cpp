// Training smoke tests for every zoo architecture, plus parameterized
// Conv2D gradient checks across geometries (kernel/stride/pad sweep).
#include <gtest/gtest.h>

#include "src/data/synthetic.hpp"
#include "src/fl/centralized.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/logging.hpp"
#include "tests/test_helpers.hpp"

namespace fedcav {
namespace {

// ------------------------------------------- conv geometry grad sweep

struct ConvCase {
  std::size_t in_channels;
  std::size_t out_channels;
  std::size_t kernel;
  std::size_t stride;
  std::size_t pad;
  std::size_t side;
};

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, BackwardMatchesNumericGradient) {
  const ConvCase c = GetParam();
  Rng rng(c.kernel * 31 + c.stride * 7 + c.pad);
  nn::Conv2D layer(c.in_channels, c.out_channels, c.kernel, c.stride, c.pad, c.side,
                   c.side, rng);
  Tensor input =
      Tensor::uniform(Shape::of(2, c.in_channels, c.side, c.side), rng, -1.0f, 1.0f);
  // The check's loss is quadratic in both inputs and weights, so the
  // central difference has zero truncation error — a larger eps purely
  // reduces float32 rounding noise on the bigger geometries.
  EXPECT_LT(testing::gradient_check_layer(layer, input, /*eps=*/1e-2), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4},   // pointwise
                      ConvCase{1, 2, 3, 1, 0, 5},   // valid conv
                      ConvCase{2, 3, 3, 1, 1, 5},   // same-padded
                      ConvCase{1, 2, 3, 2, 1, 7},   // strided
                      ConvCase{3, 2, 5, 1, 2, 8},   // large kernel, 3 channels
                      ConvCase{2, 4, 1, 2, 0, 6},   // 1x1 strided projection
                      ConvCase{1, 1, 7, 1, 3, 7})); // kernel == input

// ----------------------------------------------- zoo training smoke

struct ZooCase {
  const char* model;
  const char* dataset;
  double target;  // loss must shrink to target × initial within budget
  std::size_t epochs;
};

class ZooTraining : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooTraining, CentralizedLossShrinksOnItsDataset) {
  set_log_level(LogLevel::kError);
  const ZooCase param = GetParam();
  const data::SynthGenerator gen(
      data::synth_config_by_name(param.dataset, 17));
  Rng data_rng(18);
  data::Dataset train = gen.generate_balanced(20, data_rng);
  Rng test_rng(19);
  data::Dataset test = gen.generate_balanced(10, test_rng);

  Rng model_rng(20);
  auto model = nn::model_builder(param.model)(model_rng);
  fl::LocalTrainConfig config;
  config.lr = 0.05f;
  config.batch_size = 10;
  fl::CentralizedTrainer trainer(std::move(model), std::move(train), std::move(test),
                                 config, Rng(21));
  const double initial = trainer.run_round(1).test_loss;
  trainer.run(param.epochs, 1);
  const double final_loss = trainer.history().back().test_loss;
  const double final_acc = trainer.history().best_accuracy();
  // Tiny corpora overfit (test loss can rise while the model learns),
  // so accept either criterion: shrinking test loss or accuracy clearly
  // above the 10% chance level.
  EXPECT_TRUE(final_loss < initial * param.target || final_acc > 0.2)
      << param.model << " on " << param.dataset << ": loss " << initial << " to "
      << final_loss << ", best acc " << final_acc;
}

INSTANTIATE_TEST_SUITE_P(Architectures, ZooTraining,
                         ::testing::Values(ZooCase{"mlp", "digits", 0.9, 5},
                                           ZooCase{"lenet5", "digits", 0.8, 5},
                                           ZooCase{"cnn9", "fashion", 0.9, 5},
                                           // ResNet spends the first epochs on
                                           // a plateau before the loss drops.
                                           ZooCase{"resnet", "cifar", 0.9, 18}));

// ----------------------------------- determinism across thread counts

TEST(ZooTraining, LeNetPredictionIsDeterministic) {
  Rng rng_a(33);
  Rng rng_b(33);
  auto a = nn::make_lenet5_lite(rng_a);
  auto b = nn::make_lenet5_lite(rng_b);
  Rng input_rng(34);
  Tensor input = Tensor::uniform(Shape::of(3, 1, 14, 14), input_rng, -1.0f, 1.0f);
  Tensor out_a = a->predict(input);
  Tensor out_b = b->predict(input);
  for (std::size_t i = 0; i < out_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
  }
}

}  // namespace
}  // namespace fedcav
