// Unit + determinism tests for the chaos-search subsystem (src/chaos):
// plan text IO, sampler behavior (determinism + concentration on
// fault-triggering regions), shrinker minimization, oracle verdicts,
// and the deflake guarantee: a search report is byte-identical for a
// given (sampler, seed, budget) regardless of thread-pool size.
#include <gtest/gtest.h>

#include <string>

#include "src/chaos/oracle.hpp"
#include "src/chaos/plan.hpp"
#include "src/chaos/sampler.hpp"
#include "src/chaos/search.hpp"
#include "src/chaos/shrink.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::chaos {
namespace {

// ------------------------------------------------------------- plan IO

TEST(ChaosPlan, TextRoundTripIsExact) {
  ChaosPlan plan;
  plan.faults.seed = 12345;
  plan.faults.drop_prob = 0.125;
  plan.faults.duplicate_prob = 0.1;  // not exactly representable; the
                                     // %.17g format must still round-trip it
  plan.faults.jitter_s = 0.0375;
  plan.faults.crashes = {comm::CrashWindow{1, 1, 2}, comm::CrashWindow{3, 2, 2}};
  plan.num_clients = 7;
  plan.rounds = 3;
  plan.sample_ratio = 0.7;
  plan.checkpoint_round = 2;
  plan.min_aggregate_clients = 2;
  plan.max_retries = 5;
  plan.retry_backoff_s = 0.015;
  plan.uplink_deadline_s = 2.5;
  plan.straggler_drop_prob = 1.0 / 3.0;

  const ChaosPlan parsed = ChaosPlan::parse(plan.to_text());
  EXPECT_EQ(parsed, plan);
}

TEST(ChaosPlan, ParseToleratesCommentsAndPartialFiles) {
  const ChaosPlan plan = ChaosPlan::parse(
      "# a comment\n"
      "\n"
      "  seed = 9\n"
      "duplicate_prob=0.5\n");
  EXPECT_EQ(plan.faults.seed, 9u);
  EXPECT_EQ(plan.faults.duplicate_prob, 0.5);
  EXPECT_EQ(plan.num_clients, ChaosPlan{}.num_clients);  // defaults kept
}

TEST(ChaosPlan, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)ChaosPlan::parse("no equals sign"), Error);
  EXPECT_THROW((void)ChaosPlan::parse("unknown_key=1"), Error);
  EXPECT_THROW((void)ChaosPlan::parse("seed=1\nseed=2"), Error);  // duplicate
  EXPECT_THROW((void)ChaosPlan::parse("drop_prob=nope"), Error);
  EXPECT_THROW((void)ChaosPlan::parse("drop_prob=1.5"), Error);   // validate()
  EXPECT_THROW((void)ChaosPlan::parse("crashes=1:2-3x"), Error);
  EXPECT_THROW((void)ChaosPlan::parse("num_clients=0"), Error);
  EXPECT_THROW((void)ChaosPlan::parse("sample_ratio=0"), Error);
}

TEST(ChaosPlan, FileRoundTrip) {
  ChaosPlan plan;
  plan.faults.seed = 4;
  plan.faults.truncate_prob = 0.25;
  const std::string path = ::testing::TempDir() + "chaos_plan_roundtrip.plan";
  save_plan_file(plan, path);
  EXPECT_EQ(load_plan_file(path), plan);
  EXPECT_THROW((void)load_plan_file(path + ".missing"), Error);
}

// ------------------------------------------------------------ sampler

TEST(ChaosSampler, MaterializeCoversEveryAxis) {
  const ParamSpace space = ParamSpace::protocol_space();
  // Max levels everywhere: every axis must land in the plan.
  std::vector<std::size_t> choice;
  for (const Axis& axis : space.axes) choice.push_back(axis.levels.size() - 1);
  const ChaosPlan plan = space.materialize(choice, /*fault_seed=*/99);
  EXPECT_EQ(plan.faults.seed, 99u);
  EXPECT_GT(plan.faults.drop_prob, 0.0);
  EXPECT_GT(plan.faults.duplicate_prob, 0.0);
  EXPECT_GT(plan.faults.reorder_prob, 0.0);
  EXPECT_GT(plan.faults.corrupt_prob, 0.0);
  EXPECT_GT(plan.faults.truncate_prob, 0.0);
  EXPECT_GT(plan.faults.jitter_s, 0.0);
  EXPECT_EQ(plan.faults.crashes.size(), 2u);
  EXPECT_GT(plan.straggler_drop_prob, 0.0);
  EXPECT_GT(plan.min_aggregate_clients, 1u);
  EXPECT_GT(plan.max_retries, 0u);
  EXPECT_GT(plan.uplink_deadline_s, 0.0);

  // Malformed choices are rejected, not truncated.
  EXPECT_THROW((void)space.materialize({}, 1), Error);
  choice.back() = 1000;
  EXPECT_THROW((void)space.materialize(choice, 1), Error);
}

TEST(ChaosSampler, SameSeedSameSequence) {
  const ParamSpace space = ParamSpace::protocol_space();
  for (const bool learning : {false, true}) {
    auto a = learning ? make_learning_sampler(space, 5)
                      : make_random_sampler(space, 5);
    auto b = learning ? make_learning_sampler(space, 5)
                      : make_random_sampler(space, 5);
    for (int i = 0; i < 50; ++i) {
      const auto choice = a->next();
      EXPECT_EQ(choice, b->next());
      // Identical feedback keeps the learners in lockstep.
      a->report(choice, i % 3 == 0);
      b->report(choice, i % 3 == 0);
    }
  }
}

TEST(ChaosSampler, LearningSamplerConcentratesOnTriggeringRegion) {
  // Synthetic trigger predicate: only drop_prob's last level triggers.
  // The epsilon-greedy sampler must spend most of its drop_prob trials
  // there; the random sampler stays near uniform (1/4 of trials).
  const ParamSpace space = ParamSpace::protocol_space();
  const std::size_t kTrials = 400;
  const std::size_t drop_axis = 0;
  ASSERT_EQ(space.axes[drop_axis].name, "drop_prob");
  const std::size_t hot_level = space.axes[drop_axis].levels.size() - 1;

  const auto run = [&](std::unique_ptr<Sampler> sampler) {
    for (std::size_t i = 0; i < kTrials; ++i) {
      const auto choice = sampler->next();
      sampler->report(choice, choice[drop_axis] == hot_level);
    }
    return sampler->tallies()[drop_axis].trials[hot_level];
  };

  const std::uint64_t learned = run(make_learning_sampler(space, 7));
  const std::uint64_t random = run(make_random_sampler(space, 7));
  EXPECT_GT(learned, kTrials / 2);
  EXPECT_LT(random, kTrials / 2);
}

// ------------------------------------------------------------- oracle

TEST(ChaosOracle, CleanPlanPassesWithoutTriggering) {
  set_log_level(LogLevel::kError);
  ChaosPlan plan;  // inert faults, permissive protocol
  plan.faults.seed = 1;
  const OracleResult result = run_oracle(plan);
  EXPECT_TRUE(result.passed) << result.invariant << ": " << result.detail;
  EXPECT_FALSE(result.triggered);
}

TEST(ChaosOracle, FaultyPlanPassesAndTriggers) {
  set_log_level(LogLevel::kError);
  ChaosPlan plan;
  plan.faults.seed = 31;
  plan.faults.drop_prob = 0.3;
  plan.faults.duplicate_prob = 0.3;
  const OracleResult result = run_oracle(plan);
  EXPECT_TRUE(result.passed) << result.invariant << ": " << result.detail;
  EXPECT_TRUE(result.triggered);
}

// ------------------------------------------------------------ shrinker

TEST(ChaosShrink, RefusesPassingPlans) {
  const OracleFn always_pass = [](const ChaosPlan&) { return OracleResult{}; };
  ChaosPlan plan;
  plan.faults.seed = 1;
  EXPECT_THROW((void)shrink_plan(plan, always_pass), Error);
}

TEST(ChaosShrink, MinimizesToTheFailurePreservingCore) {
  // Synthetic bug: any plan with drop_prob > 0 fails invariant "synth".
  // Starting from a kitchen-sink plan, the minimizer must strip every
  // other axis and keep only a (halved-down) drop probability.
  const OracleFn synthetic = [](const ChaosPlan& p) {
    OracleResult r;
    if (p.faults.drop_prob > 0.0) {
      r.passed = false;
      r.triggered = true;
      r.invariant = "synth";
    }
    return r;
  };

  ChaosPlan plan;
  plan.faults.seed = 13;
  plan.faults.drop_prob = 0.5;
  plan.faults.duplicate_prob = 0.5;
  plan.faults.reorder_prob = 0.5;
  plan.faults.corrupt_prob = 0.2;
  plan.faults.truncate_prob = 0.2;
  plan.faults.jitter_s = 0.1;
  plan.faults.crashes = {comm::CrashWindow{1, 1, 1}, comm::CrashWindow{2, 1, 2}};
  plan.straggler_drop_prob = 0.7;
  plan.min_aggregate_clients = 3;
  plan.max_retries = 3;
  plan.uplink_deadline_s = 5.0;
  plan.rounds = 4;

  const ShrinkResult result = shrink_plan(plan, synthetic);
  EXPECT_FALSE(result.failure.passed);
  EXPECT_EQ(result.failure.invariant, "synth");
  EXPECT_GT(result.steps, 0u);
  // Everything irrelevant is gone...
  EXPECT_EQ(result.plan.faults.duplicate_prob, 0.0);
  EXPECT_EQ(result.plan.faults.reorder_prob, 0.0);
  EXPECT_EQ(result.plan.faults.corrupt_prob, 0.0);
  EXPECT_EQ(result.plan.faults.truncate_prob, 0.0);
  EXPECT_EQ(result.plan.faults.jitter_s, 0.0);
  EXPECT_TRUE(result.plan.faults.crashes.empty());
  EXPECT_EQ(result.plan.straggler_drop_prob, 0.0);
  EXPECT_EQ(result.plan.min_aggregate_clients, 1u);
  EXPECT_EQ(result.plan.max_retries, 0u);
  EXPECT_EQ(result.plan.uplink_deadline_s, 0.0);
  // ...while the failing axis survives, pushed to the halving floor.
  EXPECT_GT(result.plan.faults.drop_prob, 0.0);
  EXPECT_LE(result.plan.faults.drop_prob, 2e-3);
  // Local minimality: no single candidate step still fails.
  for (const double drop : {0.0}) {
    ChaosPlan zeroed = result.plan;
    zeroed.faults.drop_prob = drop;
    EXPECT_TRUE(synthetic(zeroed).passed);
  }
  // The minimized plan is a committable reproducer.
  EXPECT_EQ(ChaosPlan::parse(result.plan.to_text()), result.plan);
}

// ------------------------------------------------------- search driver

TEST(ChaosSearch, ReportIsBitReproducibleAcrossThreadPoolSizes) {
  set_log_level(LogLevel::kError);
  // The deflake guarantee: (sampler seed, budget) fully determines the
  // search, with any pool size driving the federated rounds.
  SearchConfig config;
  config.budget = 6;
  config.seed = 3;
  config.minimize = false;
  config.oracle.check_streaming_parity = false;

  ThreadPool one(1);
  ThreadPool four(4);
  config.oracle.pool = &one;
  const std::string report1 = run_search(config).to_string();
  config.oracle.pool = &four;
  const std::string report4 = run_search(config).to_string();
  EXPECT_EQ(report1, report4) << "chaos search leaked thread-order dependence";
}

TEST(ChaosSearch, RandomAndLearningSamplersBothExploreTheBudget) {
  set_log_level(LogLevel::kError);
  for (const bool learning : {false, true}) {
    SearchConfig config;
    config.budget = 5;
    config.seed = 11;
    config.learning = learning;
    config.minimize = false;
    config.oracle.check_streaming_parity = false;
    config.oracle.check_resume = false;
    const SearchReport report = run_search(config);
    EXPECT_EQ(report.explored, 5u);
    EXPECT_TRUE(report.ok())
        << "unexpected invariant violation:\n" << report.to_string();
    // Tallies account for every trial on every axis.
    for (const AxisTally& tally : report.tallies) {
      std::uint64_t total = 0;
      for (const std::uint64_t t : tally.trials) total += t;
      EXPECT_EQ(total, 5u);
    }
  }
}

}  // namespace
}  // namespace fedcav::chaos
