// Integration tests: end-to-end federated training runs exercising the
// full stack (data synthesis -> partition -> comm -> local training ->
// detection -> aggregation -> evaluation).
#include <gtest/gtest.h>

#include "src/data/fresh.hpp"
#include "src/data/stats.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/logging.hpp"

#include <sstream>

namespace fedcav::fl {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { set_log_level(LogLevel::kError); }

  static SimulationConfig base_config() {
    SimulationConfig config;
    config.dataset = "digits";
    config.model = "lenet5";
    config.strategy = "fedcav";
    config.train_samples_per_class = 30;
    config.test_samples_per_class = 15;
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.num_clients = 12;
    config.partition.sigma = 600.0;
    config.server.sample_ratio = 0.4;
    config.server.local.epochs = 5;
    config.server.local.batch_size = 10;
    config.server.local.lr = 0.05f;
    config.seed = 31;
    return config;
  }
};

TEST_F(IntegrationTest, FedCavConvergesOnDigits) {
  Simulation sim = build_simulation(base_config());
  sim.server->run(15);
  EXPECT_GT(sim.server->history().best_accuracy(), 0.6);
  // Loss trends down: the last-round test loss beats the first-round's.
  EXPECT_LT(sim.server->history().back().test_loss,
            sim.server->history()[0].test_loss);
}

TEST_F(IntegrationTest, AllStrategiesLearnOnAllDatasets) {
  for (const char* strategy : {"fedavg", "fedprox", "fedcav"}) {
    SimulationConfig config = base_config();
    config.strategy = strategy;
    Simulation sim = build_simulation(config);
    sim.server->run(6);
    EXPECT_GT(sim.server->history().best_accuracy(), 0.28)
        << "strategy " << strategy << " failed to learn";
  }
}

TEST_F(IntegrationTest, MeanInferenceLossDecreasesAcrossTraining) {
  Simulation sim = build_simulation(base_config());
  sim.server->run(10);
  const auto& history = sim.server->history();
  // Average of the first two rounds vs the last two rounds.
  const double early = (history[0].mean_inference_loss + history[1].mean_inference_loss) / 2;
  const double late = (history[8].mean_inference_loss + history[9].mean_inference_loss) / 2;
  EXPECT_LT(late, early);
}

TEST_F(IntegrationTest, ReplacementAttackDestroysUndefendedModel) {
  SimulationConfig config = base_config();
  config.attack = "replacement";
  config.attack_rounds = {8};  // strike once the model is decently trained
  config.server.detection_enabled = false;
  Simulation sim = build_simulation(config);
  sim.server->run(9);
  const auto& history = sim.server->history();
  // history[7] is round 8: its record is evaluated after the attacked
  // aggregation, so the collapse shows up there.
  EXPECT_LT(history[7].test_accuracy, history[6].test_accuracy * 0.7);
  EXPECT_TRUE(history[7].attacked);
}

TEST_F(IntegrationTest, DetectionReversesReplacementAttack) {
  SimulationConfig config = base_config();
  config.attack = "replacement";
  config.attack_rounds = {4};
  config.server.detection_enabled = true;
  Simulation sim = build_simulation(config);
  sim.server->run(8);
  const auto& history = sim.server->history();
  // The round after the attack must fire the detector and reverse.
  EXPECT_TRUE(history[3].attacked);
  EXPECT_TRUE(history[4].detection_fired);
  EXPECT_TRUE(history[4].reversed);
  // Two rounds after the reverse the model is healthy again (>= 85% of
  // the pre-attack best).
  const double pre_attack = history[2].test_accuracy;
  EXPECT_GT(history[6].test_accuracy, pre_attack * 0.85);
}

TEST_F(IntegrationTest, DetectorStaysQuietDuringHealthyTraining) {
  SimulationConfig config = base_config();
  config.server.detection_enabled = true;
  Simulation sim = build_simulation(config);
  sim.server->run(10);
  for (const auto& record : sim.server->history().records()) {
    EXPECT_FALSE(record.detection_fired) << "false positive in round " << record.round;
    EXPECT_FALSE(record.reversed);
  }
}

TEST_F(IntegrationTest, FedCavNoClipSurvivesLossInflation) {
  // A loss-inflation adversary hijacks the weighting; with clipping the
  // damage to accuracy is bounded and training continues.
  SimulationConfig config = base_config();
  config.strategy = "fedcav";
  config.attack = "lossinflation";
  config.attack_rounds = {3, 4, 5};
  Simulation sim = build_simulation(config);
  sim.server->run(10);
  EXPECT_GT(sim.server->history().best_accuracy(), 0.5);
}

TEST_F(IntegrationTest, ByzantineNoiseRoundIsSurvivable) {
  SimulationConfig config = base_config();
  config.attack = "byzantine";
  config.attack_rounds = {3};
  Simulation sim = build_simulation(config);
  sim.server->run(10);
  // One noisy participant out of ~5 dents but does not destroy training.
  EXPECT_GT(sim.server->history().best_accuracy(), 0.35);
}

TEST_F(IntegrationTest, FreshClassRedistributionIsLearnable) {
  // Fig. 4 mechanics: pre-train on common classes, inject fresh-class
  // data, verify continued training picks up the fresh classes.
  SimulationConfig config = base_config();
  Simulation sim = build_simulation(config);
  const data::FreshSplit split = data::split_fresh_classes(sim.train, 0.3);

  // Phase 1: clients hold only common-class data.
  data::PartitionConfig part_config = config.partition;
  part_config.num_clients = sim.partition.size();
  part_config.seed = 5;
  const data::Partition common_part = data::make_partition(split.common, part_config);
  std::vector<data::Dataset> phase1;
  for (const auto& idx : common_part) phase1.push_back(split.common.subset(idx));
  sim.server->redistribute_data(std::move(phase1));
  sim.server->run(6);

  // Phase 2: full data (common + fresh) redistributed.
  part_config.seed = 6;
  const data::Partition full_part = data::make_partition(sim.train, part_config);
  std::vector<data::Dataset> phase2;
  for (const auto& idx : full_part) phase2.push_back(sim.train.subset(idx));
  sim.server->redistribute_data(std::move(phase2));
  const double before_fresh = sim.server->history().back().test_accuracy;
  sim.server->run(8);
  // Fresh classes were 30% of the test set and untrainable in phase 1;
  // phase 2 must claw back a chunk of that headroom.
  EXPECT_GT(sim.server->history().best_accuracy(), before_fresh + 0.1);
}

TEST_F(IntegrationTest, ByteAccountingMatchesModelSize) {
  SimulationConfig config = base_config();
  config.server.use_network = true;
  Simulation sim = build_simulation(config);
  const metrics::RoundRecord rec = sim.server->run_round();
  const std::size_t n_params = sim.server->global_weights().size();
  // GlobalModelMsg: 8 (type) + 8 (round) + 8 (len) + 4·params + 4 (CRC).
  const std::size_t down_each = 24 + 4 * n_params + 4;
  EXPECT_EQ(rec.bytes_down, rec.participants * down_each);
  // MetadataMsg (phase ①): 8 (type) + 8·3 (round/client/samples) +
  // 8 (loss) + 4 (CRC) — cohort-size-many scalar reports, no weights.
  const std::size_t meta_each = 8 + 24 + 8 + 4;
  // ClientReportMsg (phase ②): 8 (type) + 8·3 (round/client/samples)
  // + 8 (loss) + 8 (len) + 4·params + 4 (CRC).
  const std::size_t report_each = 8 + 24 + 8 + 8 + 4 * n_params + 4;
  EXPECT_EQ(rec.bytes_up, rec.participants * (meta_each + report_each));
}

TEST_F(IntegrationTest, SigmaDegradesFedAvgAccuracy) {
  // §3 observation: heavier class imbalance hurts FedAvg.
  auto run_with_sigma = [](double sigma) {
    SimulationConfig config = base_config();
    config.strategy = "fedavg";
    config.partition.sigma = sigma;
    config.seed = 71;
    Simulation sim = build_simulation(config);
    sim.server->run(10);
    return sim.server->history().converged_accuracy(3);
  };
  const double mild = run_with_sigma(100.0);
  const double severe = run_with_sigma(900.0);
  EXPECT_GT(mild, severe - 0.05);  // allow noise, but severe must not win big
}

TEST_F(IntegrationTest, RepeatedSeededRunsAreBitIdentical) {
  // Guards two contracts at once: the threadpool's fixed-slot reduction
  // (client results are written into pre-sized slots, so aggregation
  // order is independent of thread scheduling) and the GEMM kernel's
  // run-to-run determinism. Any nondeterminism in either shows up as a
  // drifting float somewhere in the round records.
  SimulationConfig config = base_config();
  config.strategy = "fedcav";
  config.server.detection_enabled = true;
  auto run_once = [&config] {
    Simulation sim = build_simulation(config);
    sim.server->run(5);
    return sim.server->history();
  };
  const metrics::TrainingHistory first = run_once();
  const metrics::TrainingHistory second = run_once();
  ASSERT_EQ(first.rounds(), second.rounds());
  for (std::size_t r = 0; r < first.rounds(); ++r) {
    const metrics::RoundRecord& a = first[r];
    const metrics::RoundRecord& b = second[r];
    EXPECT_EQ(a.round, b.round);
    // Bit-identical floating-point trajectories, not merely "close".
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << "round " << r;
    EXPECT_EQ(a.test_loss, b.test_loss) << "round " << r;
    EXPECT_EQ(a.mean_inference_loss, b.mean_inference_loss) << "round " << r;
    EXPECT_EQ(a.max_inference_loss, b.max_inference_loss) << "round " << r;
    EXPECT_EQ(a.participants, b.participants) << "round " << r;
    EXPECT_EQ(a.detection_fired, b.detection_fired) << "round " << r;
    EXPECT_EQ(a.reversed, b.reversed) << "round " << r;
    EXPECT_EQ(a.attacked, b.attacked) << "round " << r;
    EXPECT_EQ(a.bytes_up, b.bytes_up) << "round " << r;
    EXPECT_EQ(a.bytes_down, b.bytes_down) << "round " << r;
  }
}

TEST_F(IntegrationTest, HistoryCsvSerializesFullRun) {
  Simulation sim = build_simulation(base_config());
  sim.server->run(3);
  std::ostringstream out;
  sim.server->history().write_csv(out);
  std::size_t lines = 0;
  for (char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

}  // namespace
}  // namespace fedcav::fl
