// Unit tests for src/comm: message encoding, CRC-framed envelopes, the
// in-memory network fabric with its traffic accounting, and the
// deterministic fault-injection layer.
#include <gtest/gtest.h>

#include <numeric>

#include "src/comm/compression.hpp"
#include "src/comm/crc32.hpp"
#include "src/comm/message.hpp"
#include "src/comm/network.hpp"
#include "src/utils/error.hpp"

namespace fedcav::comm {
namespace {

// ------------------------------------------------------------ messages

TEST(Message, GlobalModelRoundTrip) {
  GlobalModelMsg msg;
  msg.round = 17;
  msg.weights = {1.0f, -2.5f, 0.0f};
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const GlobalModelMsg back = GlobalModelMsg::decode(reader);
  EXPECT_EQ(back.round, 17u);
  EXPECT_EQ(back.weights, msg.weights);
}

TEST(Message, ClientReportRoundTrip) {
  ClientReportMsg msg;
  msg.round = 3;
  msg.client_id = 42;
  msg.num_samples = 128;
  msg.inference_loss = 2.718281828;
  msg.weights = {0.5f, 0.25f};
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const ClientReportMsg back = ClientReportMsg::decode(reader);
  EXPECT_EQ(back.round, 3u);
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_EQ(back.num_samples, 128u);
  EXPECT_DOUBLE_EQ(back.inference_loss, 2.718281828);
  EXPECT_EQ(back.weights, msg.weights);
}

TEST(Message, ControlRoundTrip) {
  ControlMsg msg;
  msg.round = 9;
  msg.action = ControlAction::kRejectAndReverse;
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const ControlMsg back = ControlMsg::decode(reader);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.action, ControlAction::kRejectAndReverse);
}

TEST(Message, ControlRejectsUnknownAction) {
  ByteBuffer wire;
  write_u64(wire, 9);
  write_u64(wire, 99);
  ByteReader reader(wire);
  EXPECT_THROW(ControlMsg::decode(reader), Error);
}

TEST(Message, ClientReportCostsExactlyOneFloatMoreThanWeightsPlusMeta) {
  // §6 overhead claim: FedCav's extra payload per client is one float
  // (the f64 inference loss) on top of what FedAvg must already ship.
  ClientReportMsg with_loss;
  with_loss.weights.assign(1000, 1.0f);
  with_loss.inference_loss = 1.23;
  const std::size_t total = with_loss.encode().size();
  const std::size_t weights_bytes = 8 /*len*/ + 1000 * sizeof(float);
  const std::size_t metadata = 8 /*round*/ + 8 /*client*/ + 8 /*samples*/;
  EXPECT_EQ(total, metadata + sizeof(double) + weights_bytes);
}

TEST(Envelope, RoundTripPreservesTypeAndPayload) {
  GlobalModelMsg msg;
  msg.round = 1;
  msg.weights = {1.0f};
  Envelope env{MessageType::kGlobalModel, msg.encode()};
  const ByteBuffer wire = env.encode();
  const Envelope back = Envelope::decode(wire);
  EXPECT_EQ(back.type, MessageType::kGlobalModel);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(Envelope, RejectsUnknownType) {
  ByteBuffer wire;
  write_u64(wire, 77);
  EXPECT_THROW(Envelope::decode(wire), Error);
}

TEST(Envelope, WireSizeIncludesTypeTagAndCrc) {
  Envelope env{MessageType::kControl, ByteBuffer(10, 0)};
  EXPECT_EQ(env.wire_size(), 22u);  // 8 tag + 10 payload + 4 CRC
  EXPECT_EQ(env.encode().size(), env.wire_size());
}

TEST(Message, NackRoundTrip) {
  NackMsg msg;
  msg.round = 12;
  msg.expected = MessageType::kClientReport;
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const NackMsg back = NackMsg::decode(reader);
  EXPECT_EQ(back.round, 12u);
  EXPECT_EQ(back.expected, MessageType::kClientReport);
}

TEST(Message, MetadataReportRoundTrip) {
  MetadataMsg msg;
  msg.round = 9;
  msg.client_id = 42;
  msg.num_samples = 311;
  msg.inference_loss = 2.71828182845904523;
  const ByteBuffer wire = msg.encode();
  // Scalar metadata is model-size independent: 3×u64 + 1×f64.
  EXPECT_EQ(wire.size(), 32u);
  ByteReader reader(wire);
  const MetadataMsg back = MetadataMsg::decode(reader);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_EQ(back.num_samples, 311u);
  EXPECT_EQ(back.inference_loss, msg.inference_loss);  // bit-exact f64
}

TEST(Message, MetadataReportSurvivesEnvelopeFraming) {
  MetadataMsg msg;
  msg.round = 3;
  msg.client_id = 7;
  msg.num_samples = 64;
  msg.inference_loss = 0.125;
  const Envelope env{MessageType::kMetadataReport, msg.encode()};
  EXPECT_EQ(env.wire_size(), 44u);  // 8 tag + 32 payload + 4 CRC
  const auto back = Envelope::try_decode(env.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, MessageType::kMetadataReport);
  ByteReader reader(back->payload);
  EXPECT_EQ(MetadataMsg::decode(reader).num_samples, 64u);
}

// --------------------------------------------------------- CRC framing

TEST(Crc32, MatchesIeee8023Vector) {
  // The canonical check value for the reflected 0xEDB88320 polynomial.
  const char* s = "123456789";
  const ByteBuffer data(s, s + 9);
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  ByteBuffer data(57);
  std::iota(data.begin(), data.end(), std::uint8_t{0});
  std::uint32_t crc = kCrc32Init;
  crc = crc32_update(crc, std::span<const std::uint8_t>(data.data(), 20));
  crc = crc32_update(crc, std::span<const std::uint8_t>(data.data() + 20, 37));
  EXPECT_EQ(crc32_finish(crc), crc32(data));
}

TEST(Envelope, CorruptedWireFailsCrcBeforeMessageDecode) {
  GlobalModelMsg msg;
  msg.round = 5;
  msg.weights = {1.0f, 2.0f, 3.0f};
  ByteBuffer wire = Envelope{MessageType::kGlobalModel, msg.encode()}.encode();
  // Flip one bit in every position in turn: the CRC must catch each.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ByteBuffer damaged = wire;
    damaged[i] ^= 0x10;
    EXPECT_FALSE(Envelope::try_decode(damaged).has_value()) << "byte " << i;
    EXPECT_THROW(Envelope::decode(damaged), Error);
  }
  // The pristine image still decodes.
  EXPECT_TRUE(Envelope::try_decode(wire).has_value());
}

TEST(Envelope, TruncatedWireNeverReachesMessageDecode) {
  ControlMsg msg;
  msg.round = 2;
  const ByteBuffer wire = Envelope{MessageType::kControl, msg.encode()}.encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const ByteBuffer cut(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(Envelope::try_decode(cut).has_value()) << "length " << len;
    EXPECT_THROW(Envelope::decode(cut), Error);
  }
}

TEST(Envelope, CompressedPayloadIsCrcProtectedToo) {
  // Sparsified updates ride the same framing: a corrupted compressed
  // payload must be rejected by the CRC, never handed to SparseDelta
  // decode (whose length fields would otherwise be attacker-controlled).
  std::vector<float> dense(64, 0.0f);
  dense[3] = 5.0f;
  dense[41] = -2.0f;
  const SparseDelta delta = topk_compress(dense, 0.1);
  ByteBuffer wire = Envelope{MessageType::kClientReport, delta.encode()}.encode();
  {
    const Envelope back = Envelope::decode(wire);
    ByteReader reader(back.payload);
    const SparseDelta got = SparseDelta::decode(reader);
    EXPECT_EQ(got.indices, delta.indices);
    EXPECT_EQ(got.values, delta.values);
  }
  wire[10] ^= 0x01;  // flip a bit inside the length-bearing header
  EXPECT_FALSE(Envelope::try_decode(wire).has_value());
}

// ------------------------------------------------------------- network

Envelope tiny_envelope() {
  ControlMsg msg;
  msg.round = 1;
  return Envelope{MessageType::kControl, msg.encode()};
}

TEST(Network, SendThenReceive) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(0, 2, tiny_envelope());
  auto got = net.try_recv(2, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kControl);
  EXPECT_FALSE(net.try_recv(2, 0).has_value());
}

TEST(Network, RecvFiltersBySource) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(1, 0, tiny_envelope());
  EXPECT_FALSE(net.try_recv(0, 2).has_value());
  EXPECT_TRUE(net.try_recv(0, 1).has_value());
}

TEST(Network, RecvAnyReturnsFifoWithSource) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(1, 0, tiny_envelope());
  net.send(2, 0, tiny_envelope());
  std::size_t src = 99;
  ASSERT_TRUE(net.try_recv_any(0, &src).has_value());
  EXPECT_EQ(src, 1u);
  ASSERT_TRUE(net.try_recv_any(0, &src).has_value());
  EXPECT_EQ(src, 2u);
  EXPECT_FALSE(net.try_recv_any(0, &src).has_value());
}

// Regression (PR 8): try_recv_any must drain the lowest source rank
// first regardless of arrival interleaving — the documented Transport
// fairness contract. The old implementation popped the inbox in pure
// arrival order, so a fast high-rank sender could starve rank 1.
TEST(Network, RecvAnyDrainsLowestRankFirst) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 4});
  auto round_envelope = [](std::uint64_t round) {
    ControlMsg msg;
    msg.round = round;
    return Envelope{MessageType::kControl, msg.encode()};
  };
  // Arrival order 3, 2, 2, 1 — drain order must be 1, 2, 2, 3, with
  // per-source FIFO preserved (rank 2's round-10 before its round-11).
  net.send(3, 0, round_envelope(30));
  net.send(2, 0, round_envelope(10));
  net.send(2, 0, round_envelope(11));
  net.send(1, 0, round_envelope(20));
  const std::pair<std::size_t, std::uint64_t> expected[] = {
      {1, 20}, {2, 10}, {2, 11}, {3, 30}};
  for (const auto& [want_src, want_round] : expected) {
    std::size_t src = 99;
    const std::optional<Envelope> env = net.try_recv_any(0, &src);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(src, want_src);
    ByteReader reader(env->payload);
    EXPECT_EQ(ControlMsg::decode(reader).round, want_round);
  }
  EXPECT_FALSE(net.try_recv_any(0, nullptr).has_value());
}

TEST(Network, BroadcastReachesAllOthers) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 4});
  net.broadcast(0, tiny_envelope());
  for (std::size_t dst = 1; dst < 4; ++dst) {
    EXPECT_TRUE(net.try_recv(dst, 0).has_value());
  }
  EXPECT_EQ(net.pending_messages(), 0u);
}

TEST(Network, CountsBytesAndMessages) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  const Envelope env = tiny_envelope();
  net.send(0, 1, env);
  net.send(0, 1, env);
  const TrafficStats stats = net.stats(0);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.bytes_sent, 2 * env.wire_size());
  EXPECT_EQ(net.stats(1).messages_sent, 0u);
}

TEST(Network, TotalStatsSumEndpoints) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(0, 1, tiny_envelope());
  net.send(1, 0, tiny_envelope());
  EXPECT_EQ(net.total_stats().messages_sent, 2u);
}

TEST(Network, ResetStatsClearsCounters) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  net.send(0, 1, tiny_envelope());
  net.reset_stats();
  EXPECT_EQ(net.stats(0).messages_sent, 0u);
  EXPECT_EQ(net.stats(0).bytes_sent, 0u);
}

TEST(Network, LatencyModelIsAffineInBytes) {
  NetworkConfig config;
  config.num_endpoints = 2;
  config.latency_s = 0.5;
  config.bandwidth_bytes_per_s = 100.0;
  InMemoryNetwork net(config);
  EXPECT_DOUBLE_EQ(net.model_transfer_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(net.model_transfer_seconds(200), 0.5 + 2.0);
}

TEST(Network, SimulatedTimeAccumulates) {
  NetworkConfig config;
  config.num_endpoints = 2;
  config.latency_s = 1.0;
  config.bandwidth_bytes_per_s = 1e9;
  InMemoryNetwork net(config);
  net.send(0, 1, tiny_envelope());
  net.send(0, 1, tiny_envelope());
  EXPECT_NEAR(net.stats(0).simulated_seconds, 2.0, 1e-6);
}

TEST(Network, RejectsInvalidEndpoints) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  EXPECT_THROW(net.send(0, 2, tiny_envelope()), Error);
  EXPECT_THROW(net.send(0, 0, tiny_envelope()), Error);
  EXPECT_THROW(net.try_recv(5, 0), Error);
  EXPECT_THROW(net.stats(7), Error);
}

TEST(Network, RequiresTwoEndpoints) {
  EXPECT_THROW(InMemoryNetwork(NetworkConfig{.num_endpoints = 1}), Error);
}

TEST(Network, PendingMessagesTracksQueue) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  EXPECT_EQ(net.pending_messages(), 0u);
  net.send(0, 1, tiny_envelope());
  net.send(0, 2, tiny_envelope());
  EXPECT_EQ(net.pending_messages(), 2u);
  net.try_recv(1, 0);
  EXPECT_EQ(net.pending_messages(), 1u);
}

// ------------------------------------------------------ fault fabric

NetworkConfig faulty_config(FaultPlan plan, std::size_t endpoints = 2) {
  NetworkConfig config;
  config.num_endpoints = endpoints;
  config.faults = plan;
  return config;
}

void expect_conservation(const InMemoryNetwork& net) {
  const FaultStats f = net.fault_stats();
  EXPECT_EQ(net.total_stats().messages_sent + f.duplicated,
            f.delivered + f.dropped + f.crash_dropped + net.pending_messages());
}

TEST(Faults, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.seed = 42;  // a seed alone arms nothing
  EXPECT_FALSE(plan.enabled());
  plan.drop_prob = 0.1;
  EXPECT_TRUE(plan.enabled());
}

TEST(Faults, DropAllDeliversNothing) {
  FaultPlan plan;
  plan.drop_prob = 1.0;
  InMemoryNetwork net(faulty_config(plan));
  for (int i = 0; i < 5; ++i) net.send(0, 1, tiny_envelope());
  EXPECT_FALSE(net.try_recv_wire(1, 0).has_value());
  EXPECT_EQ(net.fault_stats().dropped, 5u);
  // The sender was still metered for every transmission.
  EXPECT_EQ(net.stats(0).messages_sent, 5u);
  expect_conservation(net);
}

TEST(Faults, DuplicateAllDeliversTwice) {
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  InMemoryNetwork net(faulty_config(plan));
  net.send(0, 1, tiny_envelope());
  EXPECT_EQ(net.pending_messages(), 2u);
  const auto first = net.try_recv_wire(1, 0);
  const auto second = net.try_recv_wire(1, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);  // the stale copy is byte-identical
  EXPECT_EQ(net.fault_stats().duplicated, 1u);
  expect_conservation(net);
}

TEST(Faults, CorruptedDeliveryFailsCrc) {
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  InMemoryNetwork net(faulty_config(plan));
  net.send(0, 1, tiny_envelope());
  const auto wire = net.try_recv_wire(1, 0);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->size(), tiny_envelope().wire_size());  // same length, one bit off
  EXPECT_FALSE(Envelope::try_decode(*wire).has_value());
  EXPECT_EQ(net.fault_stats().corrupted, 1u);
  expect_conservation(net);
}

TEST(Faults, TruncatedDeliveryFailsCrc) {
  FaultPlan plan;
  plan.truncate_prob = 1.0;
  InMemoryNetwork net(faulty_config(plan));
  net.send(0, 1, tiny_envelope());
  const auto wire = net.try_recv_wire(1, 0);
  ASSERT_TRUE(wire.has_value());
  EXPECT_LT(wire->size(), tiny_envelope().wire_size());  // strict prefix
  EXPECT_FALSE(Envelope::try_decode(*wire).has_value());
  EXPECT_EQ(net.fault_stats().truncated, 1u);
  expect_conservation(net);
}

TEST(Faults, ReorderLetsLaterMessageOvertake) {
  FaultPlan plan;
  plan.reorder_prob = 1.0;
  InMemoryNetwork net(faulty_config(plan));
  ControlMsg first;
  first.round = 1;
  ControlMsg second;
  second.round = 2;
  net.send(0, 1, Envelope{MessageType::kControl, first.encode()});
  net.send(0, 1, Envelope{MessageType::kControl, second.encode()});
  auto env = Envelope::try_decode(*net.try_recv_wire(1, 0));
  ASSERT_TRUE(env.has_value());
  ByteReader reader(env->payload);
  EXPECT_EQ(ControlMsg::decode(reader).round, 2u);  // overtook its elder
  EXPECT_EQ(net.fault_stats().reordered, 1u);
  expect_conservation(net);
}

TEST(Faults, CrashWindowBlackHolesBothDirections) {
  FaultPlan plan;
  plan.crashes = {CrashWindow{/*rank=*/1, /*first_round=*/2, /*last_round=*/3}};
  InMemoryNetwork net(faulty_config(plan, 3));
  net.begin_round(2);
  net.send(0, 1, tiny_envelope());  // to the crashed endpoint
  net.send(1, 0, tiny_envelope());  // from the crashed endpoint
  net.send(0, 2, tiny_envelope());  // unrelated link is unaffected
  EXPECT_EQ(net.fault_stats().crash_dropped, 2u);
  EXPECT_FALSE(net.try_recv_wire(1, 0).has_value());
  EXPECT_FALSE(net.try_recv_wire(0, 1).has_value());
  EXPECT_TRUE(net.try_recv_wire(2, 0).has_value());
  // Rejoin: the window closed, traffic flows again.
  net.begin_round(4);
  net.send(0, 1, tiny_envelope());
  EXPECT_TRUE(net.try_recv_wire(1, 0).has_value());
  expect_conservation(net);
}

TEST(Faults, JitterChargesSimulatedTime) {
  FaultPlan plan;
  plan.jitter_s = 0.5;
  InMemoryNetwork net(faulty_config(plan));
  const double clean = net.model_transfer_seconds(tiny_envelope().wire_size());
  for (int i = 0; i < 20; ++i) net.send(0, 1, tiny_envelope());
  const double jitter = net.fault_stats().jitter_seconds;
  EXPECT_GT(jitter, 0.0);
  EXPECT_LE(jitter, 20 * 0.5);
  EXPECT_NEAR(net.stats(0).simulated_seconds, 20 * clean + jitter, 1e-9);
}

TEST(Faults, ZeroedPlanIsByteIdenticalToDefaultFabric) {
  // Acceptance gate: an explicitly zeroed FaultPlan (even with a seed
  // set) must reproduce the default fabric's traffic exactly — the
  // fault layer is provably inert when disabled.
  FaultPlan zeroed;
  zeroed.seed = 1234;
  InMemoryNetwork with_plan(faulty_config(zeroed, 3));
  InMemoryNetwork plain(NetworkConfig{.num_endpoints = 3});
  for (auto* net : {&with_plan, &plain}) {
    net->begin_round(1);
    net->send(0, 1, tiny_envelope());
    net->send(0, 2, tiny_envelope());
    net->send(1, 0, tiny_envelope());
  }
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(with_plan.stats(e).messages_sent, plain.stats(e).messages_sent);
    EXPECT_EQ(with_plan.stats(e).bytes_sent, plain.stats(e).bytes_sent);
    EXPECT_DOUBLE_EQ(with_plan.stats(e).simulated_seconds,
                     plain.stats(e).simulated_seconds);
  }
  const auto a = with_plan.try_recv_wire(1, 0);
  const auto b = plain.try_recv_wire(1, 0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*a, *b);
  const FaultStats f = with_plan.fault_stats();
  EXPECT_EQ(f.dropped + f.crash_dropped + f.duplicated + f.reordered + f.corrupted +
                f.truncated,
            0u);
  EXPECT_DOUBLE_EQ(f.jitter_seconds, 0.0);
}

TEST(Faults, MixedPlanConservesEveryMessage) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.3;
  plan.duplicate_prob = 0.2;
  plan.reorder_prob = 0.2;
  plan.corrupt_prob = 0.1;
  plan.truncate_prob = 0.1;
  plan.jitter_s = 0.05;
  InMemoryNetwork net(faulty_config(plan, 4));
  net.begin_round(1);
  for (int i = 0; i < 100; ++i) {
    net.send(0, 1 + static_cast<std::size_t>(i % 3), tiny_envelope());
    net.send(1 + static_cast<std::size_t>(i % 3), 0, tiny_envelope());
  }
  // Drain roughly half, leaving the rest pending.
  for (int i = 0; i < 40; ++i) {
    net.try_recv_wire(1, 0);
    net.try_recv_wire(0, 2);
  }
  expect_conservation(net);
}

TEST(Faults, IdenticalSeedsReplayIdenticalFaultSequences) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.4;
  plan.corrupt_prob = 0.2;
  InMemoryNetwork a(faulty_config(plan, 3));
  InMemoryNetwork b(faulty_config(plan, 3));
  for (auto* net : {&a, &b}) {
    net->begin_round(1);
    for (int i = 0; i < 50; ++i) {
      net->send(0, 1, tiny_envelope());
      net->send(0, 2, tiny_envelope());
      net->send(1, 0, tiny_envelope());
    }
  }
  const FaultStats fa = a.fault_stats();
  const FaultStats fb = b.fault_stats();
  EXPECT_EQ(fa.dropped, fb.dropped);
  EXPECT_EQ(fa.corrupted, fb.corrupted);
  while (true) {
    const auto wa = a.try_recv_wire(1, 0);
    const auto wb = b.try_recv_wire(1, 0);
    EXPECT_EQ(wa.has_value(), wb.has_value());
    if (!wa.has_value() || !wb.has_value()) break;
    EXPECT_EQ(*wa, *wb);
  }
}

TEST(Faults, SaveLoadStateRestoresQueuesAndStreams) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 0.5;
  plan.corrupt_prob = 0.3;
  InMemoryNetwork a(faulty_config(plan, 3));
  a.begin_round(3);
  for (int i = 0; i < 10; ++i) a.send(0, 1, tiny_envelope());

  ByteBuffer buf;
  a.save_state(buf);
  InMemoryNetwork b(faulty_config(plan, 3));
  ByteReader reader(buf);
  b.load_state(reader);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(b.pending_messages(), a.pending_messages());

  // Both fabrics now continue with identical fault streams and queues.
  for (auto* net : {&a, &b}) {
    for (int i = 0; i < 10; ++i) net->send(0, 1, tiny_envelope());
  }
  while (true) {
    const auto wa = a.try_recv_wire(1, 0);
    const auto wb = b.try_recv_wire(1, 0);
    EXPECT_EQ(wa.has_value(), wb.has_value());
    if (!wa.has_value() || !wb.has_value()) break;
    EXPECT_EQ(*wa, *wb);
  }
}

TEST(Faults, LoadStateRejectsMismatchedFabric) {
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 0.5;
  InMemoryNetwork a(faulty_config(plan, 3));
  ByteBuffer buf;
  a.save_state(buf);
  {
    InMemoryNetwork wrong_size(faulty_config(plan, 4));
    ByteReader reader(buf);
    EXPECT_THROW(wrong_size.load_state(reader), Error);
  }
  {
    InMemoryNetwork no_faults(NetworkConfig{.num_endpoints = 3});
    ByteReader reader(buf);
    EXPECT_THROW(no_faults.load_state(reader), Error);
  }
}

TEST(Faults, ValidateRejectsBadPlans) {
  const std::size_t n = 3;
  {
    FaultPlan plan;
    plan.drop_prob = 1.5;
    EXPECT_THROW(plan.validate(n), Error);
  }
  {
    FaultPlan plan;
    plan.jitter_s = -0.1;
    EXPECT_THROW(plan.validate(n), Error);
  }
  {
    FaultPlan plan;
    plan.crashes = {CrashWindow{/*rank=*/3, 1, 2}};  // rank out of range
    EXPECT_THROW(plan.validate(n), Error);
  }
  {
    FaultPlan plan;
    plan.crashes = {CrashWindow{1, /*first_round=*/4, /*last_round=*/2}};
    EXPECT_THROW(plan.validate(n), Error);
  }
  {
    FaultPlan plan;
    plan.crashes = {CrashWindow{1, /*first_round=*/0, /*last_round=*/2}};
    EXPECT_THROW(plan.validate(n), Error);  // rounds are 1-based
  }
}

TEST(Faults, ParseCrashSpec) {
  const auto windows = parse_crash_spec("3:2-5,7:1-1");
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].rank, 3u);
  EXPECT_EQ(windows[0].first_round, 2u);
  EXPECT_EQ(windows[0].last_round, 5u);
  EXPECT_EQ(windows[1].rank, 7u);
  EXPECT_EQ(windows[1].first_round, 1u);
  EXPECT_EQ(windows[1].last_round, 1u);
  EXPECT_TRUE(parse_crash_spec("").empty());
  EXPECT_THROW(parse_crash_spec("3"), Error);
  EXPECT_THROW(parse_crash_spec("3:2"), Error);
  EXPECT_THROW(parse_crash_spec("a:1-2"), Error);
  EXPECT_THROW(parse_crash_spec("1:x-2"), Error);
}

}  // namespace
}  // namespace fedcav::comm
