// Unit tests for src/comm: message encoding, envelopes, and the
// in-memory network fabric with its traffic accounting.
#include <gtest/gtest.h>

#include "src/comm/message.hpp"
#include "src/comm/network.hpp"
#include "src/utils/error.hpp"

namespace fedcav::comm {
namespace {

// ------------------------------------------------------------ messages

TEST(Message, GlobalModelRoundTrip) {
  GlobalModelMsg msg;
  msg.round = 17;
  msg.weights = {1.0f, -2.5f, 0.0f};
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const GlobalModelMsg back = GlobalModelMsg::decode(reader);
  EXPECT_EQ(back.round, 17u);
  EXPECT_EQ(back.weights, msg.weights);
}

TEST(Message, ClientReportRoundTrip) {
  ClientReportMsg msg;
  msg.round = 3;
  msg.client_id = 42;
  msg.num_samples = 128;
  msg.inference_loss = 2.718281828;
  msg.weights = {0.5f, 0.25f};
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const ClientReportMsg back = ClientReportMsg::decode(reader);
  EXPECT_EQ(back.round, 3u);
  EXPECT_EQ(back.client_id, 42u);
  EXPECT_EQ(back.num_samples, 128u);
  EXPECT_DOUBLE_EQ(back.inference_loss, 2.718281828);
  EXPECT_EQ(back.weights, msg.weights);
}

TEST(Message, ControlRoundTrip) {
  ControlMsg msg;
  msg.round = 9;
  msg.action = ControlAction::kRejectAndReverse;
  const ByteBuffer wire = msg.encode();
  ByteReader reader(wire);
  const ControlMsg back = ControlMsg::decode(reader);
  EXPECT_EQ(back.round, 9u);
  EXPECT_EQ(back.action, ControlAction::kRejectAndReverse);
}

TEST(Message, ControlRejectsUnknownAction) {
  ByteBuffer wire;
  write_u64(wire, 9);
  write_u64(wire, 99);
  ByteReader reader(wire);
  EXPECT_THROW(ControlMsg::decode(reader), Error);
}

TEST(Message, ClientReportCostsExactlyOneFloatMoreThanWeightsPlusMeta) {
  // §6 overhead claim: FedCav's extra payload per client is one float
  // (the f64 inference loss) on top of what FedAvg must already ship.
  ClientReportMsg with_loss;
  with_loss.weights.assign(1000, 1.0f);
  with_loss.inference_loss = 1.23;
  const std::size_t total = with_loss.encode().size();
  const std::size_t weights_bytes = 8 /*len*/ + 1000 * sizeof(float);
  const std::size_t metadata = 8 /*round*/ + 8 /*client*/ + 8 /*samples*/;
  EXPECT_EQ(total, metadata + sizeof(double) + weights_bytes);
}

TEST(Envelope, RoundTripPreservesTypeAndPayload) {
  GlobalModelMsg msg;
  msg.round = 1;
  msg.weights = {1.0f};
  Envelope env{MessageType::kGlobalModel, msg.encode()};
  const ByteBuffer wire = env.encode();
  const Envelope back = Envelope::decode(wire);
  EXPECT_EQ(back.type, MessageType::kGlobalModel);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(Envelope, RejectsUnknownType) {
  ByteBuffer wire;
  write_u64(wire, 77);
  EXPECT_THROW(Envelope::decode(wire), Error);
}

TEST(Envelope, WireSizeIncludesTypeTag) {
  Envelope env{MessageType::kControl, ByteBuffer(10, 0)};
  EXPECT_EQ(env.wire_size(), 18u);
}

// ------------------------------------------------------------- network

Envelope tiny_envelope() {
  ControlMsg msg;
  msg.round = 1;
  return Envelope{MessageType::kControl, msg.encode()};
}

TEST(Network, SendThenReceive) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(0, 2, tiny_envelope());
  auto got = net.try_recv(2, 0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MessageType::kControl);
  EXPECT_FALSE(net.try_recv(2, 0).has_value());
}

TEST(Network, RecvFiltersBySource) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(1, 0, tiny_envelope());
  EXPECT_FALSE(net.try_recv(0, 2).has_value());
  EXPECT_TRUE(net.try_recv(0, 1).has_value());
}

TEST(Network, RecvAnyReturnsFifoWithSource) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(1, 0, tiny_envelope());
  net.send(2, 0, tiny_envelope());
  std::size_t src = 99;
  ASSERT_TRUE(net.try_recv_any(0, &src).has_value());
  EXPECT_EQ(src, 1u);
  ASSERT_TRUE(net.try_recv_any(0, &src).has_value());
  EXPECT_EQ(src, 2u);
  EXPECT_FALSE(net.try_recv_any(0, &src).has_value());
}

TEST(Network, BroadcastReachesAllOthers) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 4});
  net.broadcast(0, tiny_envelope());
  for (std::size_t dst = 1; dst < 4; ++dst) {
    EXPECT_TRUE(net.try_recv(dst, 0).has_value());
  }
  EXPECT_EQ(net.pending_messages(), 0u);
}

TEST(Network, CountsBytesAndMessages) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  const Envelope env = tiny_envelope();
  net.send(0, 1, env);
  net.send(0, 1, env);
  const TrafficStats stats = net.stats(0);
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.bytes_sent, 2 * env.wire_size());
  EXPECT_EQ(net.stats(1).messages_sent, 0u);
}

TEST(Network, TotalStatsSumEndpoints) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  net.send(0, 1, tiny_envelope());
  net.send(1, 0, tiny_envelope());
  EXPECT_EQ(net.total_stats().messages_sent, 2u);
}

TEST(Network, ResetStatsClearsCounters) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  net.send(0, 1, tiny_envelope());
  net.reset_stats();
  EXPECT_EQ(net.stats(0).messages_sent, 0u);
  EXPECT_EQ(net.stats(0).bytes_sent, 0u);
}

TEST(Network, LatencyModelIsAffineInBytes) {
  NetworkConfig config;
  config.num_endpoints = 2;
  config.latency_s = 0.5;
  config.bandwidth_bytes_per_s = 100.0;
  InMemoryNetwork net(config);
  EXPECT_DOUBLE_EQ(net.model_transfer_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(net.model_transfer_seconds(200), 0.5 + 2.0);
}

TEST(Network, SimulatedTimeAccumulates) {
  NetworkConfig config;
  config.num_endpoints = 2;
  config.latency_s = 1.0;
  config.bandwidth_bytes_per_s = 1e9;
  InMemoryNetwork net(config);
  net.send(0, 1, tiny_envelope());
  net.send(0, 1, tiny_envelope());
  EXPECT_NEAR(net.stats(0).simulated_seconds, 2.0, 1e-6);
}

TEST(Network, RejectsInvalidEndpoints) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 2});
  EXPECT_THROW(net.send(0, 2, tiny_envelope()), Error);
  EXPECT_THROW(net.send(0, 0, tiny_envelope()), Error);
  EXPECT_THROW(net.try_recv(5, 0), Error);
  EXPECT_THROW(net.stats(7), Error);
}

TEST(Network, RequiresTwoEndpoints) {
  EXPECT_THROW(InMemoryNetwork(NetworkConfig{.num_endpoints = 1}), Error);
}

TEST(Network, PendingMessagesTracksQueue) {
  InMemoryNetwork net(NetworkConfig{.num_endpoints = 3});
  EXPECT_EQ(net.pending_messages(), 0u);
  net.send(0, 1, tiny_envelope());
  net.send(0, 2, tiny_envelope());
  EXPECT_EQ(net.pending_messages(), 2u);
  net.try_recv(1, 0);
  EXPECT_EQ(net.pending_messages(), 1u);
}

}  // namespace
}  // namespace fedcav::comm
