// Property-based tests: parameterized sweeps over randomized inputs
// checking the invariants DESIGN.md §6 calls out.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "src/core/contribution.hpp"
#include "src/core/detector.hpp"
#include "src/core/fedcav.hpp"
#include "src/data/partition.hpp"
#include "src/data/stats.hpp"
#include "src/data/synthetic.hpp"
#include "src/comm/compression.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/robust.hpp"
#include "src/nn/activation.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/loss.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/rng.hpp"
#include "tests/test_helpers.hpp"

namespace fedcav {
namespace {

// --------------------------------------------- contribution invariants

class ContributionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContributionProperty, WeightsFormADistribution) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_int(std::uint64_t{30});
  std::vector<double> losses(n);
  for (auto& f : losses) f = rng.uniform(0.0, 10.0);

  for (const auto clip :
       {core::ClipPolicy::kNone, core::ClipPolicy::kMean, core::ClipPolicy::kQuantile}) {
    core::ContributionConfig config;
    config.clip = clip;
    const auto w = core::contribution_weights(losses, config);
    ASSERT_EQ(w.size(), n);
    double sum = 0.0;
    for (double v : w) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(ContributionProperty, ClippingNeverIncreasesALoss) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_int(std::uint64_t{30});
  std::vector<double> losses(n);
  for (auto& f : losses) f = rng.uniform(0.0, 20.0);
  core::ContributionConfig config;
  config.clip = core::ClipPolicy::kMean;
  const auto clipped = core::clip_losses(losses, config);
  for (std::size_t i = 0; i < n; ++i) EXPECT_LE(clipped[i], losses[i] + 1e-12);
}

TEST_P(ContributionProperty, MonotoneInLoss) {
  // Without clipping: strictly larger loss => strictly larger weight.
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.uniform_int(std::uint64_t{20});
  std::vector<double> losses(n);
  for (auto& f : losses) f = rng.uniform(0.0, 5.0);
  core::ContributionConfig config;
  config.clip = core::ClipPolicy::kNone;
  const auto w = core::contribution_weights(losses, config);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (losses[i] > losses[j] + 1e-9) {
        EXPECT_GT(w[i], w[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContributionProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------- aggregation invariants

class AggregationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationProperty, FedCavOutputInConvexHullCoordinatewise) {
  Rng rng(GetParam());
  const std::size_t clients = 2 + rng.uniform_int(std::uint64_t{10});
  const std::size_t dim = 1 + rng.uniform_int(std::uint64_t{50});
  std::vector<fl::ClientUpdate> updates(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].inference_loss = rng.uniform(0.0, 4.0);
    updates[i].num_samples = 1 + rng.uniform_int(std::uint64_t{100});
    updates[i].weights.resize(dim);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-3.0f, 3.0f);
  }
  core::FedCavStrategy strategy;
  const nn::Weights out = strategy.aggregate(nn::Weights(dim, 0.0f), updates);
  for (std::size_t d = 0; d < dim; ++d) {
    float lo = updates[0].weights[d];
    float hi = lo;
    for (const auto& u : updates) {
      lo = std::min(lo, u.weights[d]);
      hi = std::max(hi, u.weights[d]);
    }
    EXPECT_GE(out[d], lo - 1e-4f);
    EXPECT_LE(out[d], hi + 1e-4f);
  }
}

TEST_P(AggregationProperty, FedAvgAndFedCavAgreeOnUniformInputs) {
  // Equal sample counts + equal losses: both reduce to the plain mean.
  Rng rng(GetParam());
  const std::size_t clients = 2 + rng.uniform_int(std::uint64_t{8});
  const std::size_t dim = 1 + rng.uniform_int(std::uint64_t{20});
  std::vector<fl::ClientUpdate> updates(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].inference_loss = 1.5;
    updates[i].num_samples = 10;
    updates[i].weights.resize(dim);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-1.0f, 1.0f);
  }
  fl::FedAvg fedavg;
  core::FedCavStrategy fedcav;
  const nn::Weights a = fedavg.aggregate(nn::Weights(dim, 0.0f), updates);
  const nn::Weights b = fedcav.aggregate(nn::Weights(dim, 0.0f), updates);
  for (std::size_t d = 0; d < dim; ++d) EXPECT_NEAR(a[d], b[d], 1e-5f);
}

TEST_P(AggregationProperty, AggregationIsPermutationInvariant) {
  Rng rng(GetParam());
  const std::size_t clients = 3 + rng.uniform_int(std::uint64_t{6});
  std::vector<fl::ClientUpdate> updates(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].inference_loss = rng.uniform(0.1, 3.0);
    updates[i].num_samples = 1 + rng.uniform_int(std::uint64_t{50});
    updates[i].weights = {rng.uniform_f(-2.0f, 2.0f), rng.uniform_f(-2.0f, 2.0f)};
  }
  std::vector<fl::ClientUpdate> reversed(updates.rbegin(), updates.rend());
  core::FedCavStrategy fedcav;
  const nn::Weights a = fedcav.aggregate({0.0f, 0.0f}, updates);
  const nn::Weights b = fedcav.aggregate({0.0f, 0.0f}, reversed);
  EXPECT_NEAR(a[0], b[0], 1e-5f);
  EXPECT_NEAR(a[1], b[1], 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationProperty,
                         ::testing::Values(2, 4, 6, 10, 16, 26, 42, 68));

// ------------------------------------------------- detector invariants

class DetectorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DetectorProperty, NeverFiresWhenAllLossesShrink) {
  Rng rng(GetParam());
  core::AnomalyDetector detector;
  std::vector<double> losses(5 + rng.uniform_int(std::uint64_t{10}));
  for (auto& f : losses) f = rng.uniform(1.0, 5.0);
  detector.commit(losses);
  for (int round = 0; round < 10; ++round) {
    for (auto& f : losses) f *= rng.uniform(0.5, 1.0);
    EXPECT_FALSE(detector.check(losses).abnormal);
    detector.commit(losses);
  }
}

TEST_P(DetectorProperty, AlwaysFiresWhenAllLossesJumpAboveMax) {
  Rng rng(GetParam());
  core::AnomalyDetector detector;
  std::vector<double> losses(3 + rng.uniform_int(std::uint64_t{10}));
  for (auto& f : losses) f = rng.uniform(0.5, 2.0);
  detector.commit(losses);
  const double previous_max = 2.0;
  for (auto& f : losses) f = previous_max + rng.uniform(0.1, 5.0);
  EXPECT_TRUE(detector.check(losses).abnormal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorProperty,
                         ::testing::Values(3, 7, 11, 19, 23, 31));

// ------------------------------------------------ partition invariants

struct PartitionCase {
  data::PartitionScheme scheme;
  std::size_t num_clients;
  std::uint64_t seed;
};

class PartitionProperty : public ::testing::TestWithParam<PartitionCase> {};

TEST_P(PartitionProperty, EveryClientNonEmptyAndIndicesValid) {
  const PartitionCase param = GetParam();
  const data::SynthGenerator gen(data::synth_digits_config(2));
  Rng rng(3);
  const data::Dataset ds = gen.generate_balanced(30, rng);
  data::PartitionConfig config;
  config.scheme = param.scheme;
  config.num_clients = param.num_clients;
  config.seed = param.seed;
  const data::Partition part = data::make_partition(ds, config);
  ASSERT_EQ(part.size(), param.num_clients);
  for (const auto& client : part) {
    EXPECT_FALSE(client.empty());
    for (std::size_t i : client) EXPECT_LT(i, ds.size());
  }
}

TEST_P(PartitionProperty, ExactCoverSchemesLoseNoSample) {
  const PartitionCase param = GetParam();
  if (param.scheme != data::PartitionScheme::kIidBalanced &&
      param.scheme != data::PartitionScheme::kNonIidBalanced) {
    GTEST_SKIP() << "sampling-based schemes may duplicate/drop by design";
  }
  const data::SynthGenerator gen(data::synth_digits_config(2));
  Rng rng(3);
  const data::Dataset ds = gen.generate_balanced(30, rng);
  data::PartitionConfig config;
  config.scheme = param.scheme;
  config.num_clients = param.num_clients;
  config.seed = param.seed;
  const data::Partition part = data::make_partition(ds, config);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& client : part) {
    total += client.size();
    seen.insert(client.begin(), client.end());
  }
  EXPECT_EQ(total, ds.size());
  EXPECT_EQ(seen.size(), ds.size());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, PartitionProperty,
    ::testing::Values(
        PartitionCase{data::PartitionScheme::kIidBalanced, 5, 1},
        PartitionCase{data::PartitionScheme::kIidBalanced, 30, 2},
        PartitionCase{data::PartitionScheme::kNonIidBalanced, 10, 3},
        PartitionCase{data::PartitionScheme::kNonIidBalanced, 25, 4},
        PartitionCase{data::PartitionScheme::kNonIidImbalanced, 10, 5},
        PartitionCase{data::PartitionScheme::kNonIidImbalanced, 40, 6},
        PartitionCase{data::PartitionScheme::kDirichlet, 10, 7},
        PartitionCase{data::PartitionScheme::kDirichlet, 20, 8}));

// ------------------------------------------------- gradient properties

struct DenseCase {
  std::size_t in;
  std::size_t out;
  std::size_t batch;
  std::uint64_t seed;
};

class DenseGradProperty : public ::testing::TestWithParam<DenseCase> {};

TEST_P(DenseGradProperty, GradCheckAcrossShapes) {
  const DenseCase param = GetParam();
  Rng rng(param.seed);
  nn::Dense layer(param.in, param.out, rng);
  Tensor input = Tensor::uniform(Shape::of(param.batch, param.in), rng, -1.0f, 1.0f);
  EXPECT_LT(testing::gradient_check_layer(layer, input), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DenseGradProperty,
                         ::testing::Values(DenseCase{1, 1, 1, 1}, DenseCase{7, 3, 2, 2},
                                           DenseCase{16, 16, 4, 3}, DenseCase{3, 11, 5, 4},
                                           DenseCase{32, 2, 1, 5}));

// ------------------------------------------------- softmax ce property

class SoftmaxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftmaxProperty, LossIsShiftInvariant) {
  // softmax-CE(logits + c) == softmax-CE(logits) for any constant shift.
  Rng rng(GetParam());
  nn::SoftmaxCrossEntropy ce;
  Tensor logits = Tensor::uniform(Shape::of(3, 6), rng, -2.0f, 2.0f);
  const std::vector<std::size_t> labels = {0, 3, 5};
  const float base = ce.forward(logits, labels);
  Tensor shifted = logits;
  for (std::size_t i = 0; i < shifted.numel(); ++i) shifted[i] += 7.5f;
  EXPECT_NEAR(ce.forward(shifted, labels), base, 1e-4f);
}

TEST_P(SoftmaxProperty, GradientRowsSumToZero) {
  // dCE/dlogits rows sum to 0 (softmax minus one-hot).
  Rng rng(GetParam());
  nn::SoftmaxCrossEntropy ce;
  Tensor logits = Tensor::uniform(Shape::of(4, 5), rng, -3.0f, 3.0f);
  const std::vector<std::size_t> labels = {1, 0, 4, 2};
  ce.forward(logits, labels);
  Tensor grad = ce.backward();
  for (std::size_t r = 0; r < 4; ++r) {
    double row = 0.0;
    for (std::size_t c = 0; c < 5; ++c) row += static_cast<double>(grad(r, c));
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Values(1, 9, 27, 81));

// ---------------------------------------------------- log-sum-exp prop

class LseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LseProperty, UpperAndLowerBounds) {
  // max(x) <= LSE(x) <= max(x) + log(n).
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.uniform_int(std::uint64_t{40});
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-100.0, 100.0);
  const double lse = ops::log_sum_exp(x);
  const double mx = *std::max_element(x.begin(), x.end());
  EXPECT_GE(lse, mx - 1e-9);
  EXPECT_LE(lse, mx + std::log(static_cast<double>(n)) + 1e-9);
}

TEST_P(LseProperty, SoftmaxIsGradientOfLse) {
  // d LSE / d x_i == softmax(x)_i — the identity connecting the paper's
  // global loss (Eq. 7) to its aggregation weights (Eq. 9).
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_int(std::uint64_t{10});
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-3.0, 3.0);
  const auto softmax = ops::stable_softmax(x);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> up = x;
    std::vector<double> down = x;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (ops::log_sum_exp(up) - ops::log_sum_exp(down)) / (2 * eps);
    EXPECT_NEAR(numeric, softmax[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LseProperty, ::testing::Values(5, 10, 20, 40, 80));


// ------------------------------------------------- robust aggregation

class RobustProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustProperty, MedianAndTrimmedMeanStayInCoordinateRange) {
  Rng rng(GetParam());
  const std::size_t clients = 3 + rng.uniform_int(std::uint64_t{8});
  const std::size_t dim = 1 + rng.uniform_int(std::uint64_t{30});
  std::vector<fl::ClientUpdate> updates(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].num_samples = 10;
    updates[i].inference_loss = 1.0;
    updates[i].weights.resize(dim);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-5.0f, 5.0f);
  }
  fl::CoordinateMedian median;
  fl::TrimmedMean trimmed(0.2);
  const nn::Weights m = median.aggregate(nn::Weights(dim, 0.0f), updates);
  const nn::Weights t = trimmed.aggregate(nn::Weights(dim, 0.0f), updates);
  for (std::size_t d = 0; d < dim; ++d) {
    float lo = updates[0].weights[d];
    float hi = lo;
    for (const auto& u : updates) {
      lo = std::min(lo, u.weights[d]);
      hi = std::max(hi, u.weights[d]);
    }
    EXPECT_GE(m[d], lo - 1e-5f);
    EXPECT_LE(m[d], hi + 1e-5f);
    EXPECT_GE(t[d], lo - 1e-5f);
    EXPECT_LE(t[d], hi + 1e-5f);
  }
}

TEST_P(RobustProperty, KrumAvoidsFarOutlier) {
  Rng rng(GetParam());
  const std::size_t honest = 4 + rng.uniform_int(std::uint64_t{4});
  const std::size_t dim = 4 + rng.uniform_int(std::uint64_t{16});
  std::vector<fl::ClientUpdate> updates(honest + 1);
  for (std::size_t i = 0; i < honest; ++i) {
    updates[i].client_id = i;
    updates[i].weights.resize(dim);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-0.1f, 0.1f);
  }
  updates[honest].client_id = honest;
  updates[honest].weights.assign(dim, 1000.0f);
  fl::Krum krum(1);
  EXPECT_LT(krum.select(updates), honest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustProperty, ::testing::Values(4, 9, 25, 49, 81));

// ---------------------------------------------------- compression props

class CompressionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressionProperty, ReconstructionErrorShrinksWithRatio) {
  Rng rng(GetParam());
  std::vector<float> dense(200);
  for (auto& v : dense) v = rng.uniform_f(-2.0f, 2.0f);
  auto error_at = [&](double ratio) {
    const auto back = comm::decompress(comm::topk_compress(dense, ratio));
    double err = 0.0;
    for (std::size_t i = 0; i < dense.size(); ++i) {
      const double d = static_cast<double>(dense[i]) - static_cast<double>(back[i]);
      err += d * d;
    }
    return err;
  };
  const double coarse = error_at(0.05);
  const double medium = error_at(0.3);
  const double fine = error_at(0.9);
  EXPECT_GE(coarse, medium - 1e-9);
  EXPECT_GE(medium, fine - 1e-9);
  EXPECT_NEAR(error_at(1.0), 0.0, 1e-12);
}

TEST_P(CompressionProperty, TopKErrorIsOptimalAmongSameSizeSupports) {
  // The kept coordinates have magnitude >= every dropped coordinate, so
  // no other k-support can achieve lower L2 reconstruction error.
  Rng rng(GetParam());
  std::vector<float> dense(60);
  for (auto& v : dense) v = rng.uniform_f(-3.0f, 3.0f);
  const auto sparse = comm::topk_compress(dense, 0.25);
  std::vector<bool> kept(dense.size(), false);
  for (auto idx : sparse.indices) kept[idx] = true;
  float min_kept = 1e30f;
  float max_dropped = 0.0f;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (kept[i]) min_kept = std::min(min_kept, std::abs(dense[i]));
    else max_dropped = std::max(max_dropped, std::abs(dense[i]));
  }
  EXPECT_GE(min_kept, max_dropped - 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionProperty, ::testing::Values(6, 12, 24, 48));

}  // namespace
}  // namespace fedcav
