// Custom aggregation strategy: plug a user-defined rule into the
// federated runtime. This example implements "FedMedian" — coordinate-
// wise median aggregation (a classic Byzantine-robust rule) — entirely
// outside the library, then races it against FedCav under a Byzantine
// adversary.
//
//   ./example_custom_strategy [--rounds 12]
#include <algorithm>
#include <cstdio>
#include <memory>

#include "src/attack/loss_inflation.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/logging.hpp"

namespace {

using namespace fedcav;

/// Coordinate-wise median of the client updates. Robust to a minority of
/// arbitrarily-corrupted updates at the cost of ignoring sample counts.
class FedMedian : public fl::AggregationStrategy {
 public:
  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<fl::ClientUpdate>& updates) override {
    (void)global;
    const std::size_t dim = updates.front().weights.size();
    nn::Weights out(dim);
    std::vector<float> column(updates.size());
    for (std::size_t d = 0; d < dim; ++d) {
      for (std::size_t u = 0; u < updates.size(); ++u) {
        column[u] = updates[u].weights[d];
      }
      const std::size_t mid = column.size() / 2;
      std::nth_element(column.begin(), column.begin() + static_cast<std::ptrdiff_t>(mid),
                       column.end());
      out[d] = column[mid];
    }
    return out;
  }

  std::vector<double> aggregation_weights(
      const std::vector<fl::ClientUpdate>& updates) const override {
    // The median has no per-client linear weights; report uniform ones
    // for introspection purposes.
    return std::vector<double>(updates.size(), 1.0 / static_cast<double>(updates.size()));
  }

  std::string name() const override { return "FedMedian"; }
};

metrics::TrainingHistory run_with(std::unique_ptr<fl::AggregationStrategy> strategy,
                                  std::size_t rounds) {
  // Build via the simulation config, then swap in the custom strategy by
  // constructing the server directly from the same ingredients.
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedavg";  // placeholder; replaced below
  config.train_samples_per_class = 25;
  config.test_samples_per_class = 15;
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.partition.num_clients = 16;
  config.partition.sigma = 600.0;
  config.server.local.lr = 0.05f;
  config.attack = "byzantine";
  config.attack_rounds = {3, 6, 9};

  fl::Simulation sim = fl::build_simulation(config);

  // Rebuild clients around the same partition for the custom server.
  Rng rng(config.seed);
  const nn::ModelBuilder builder = nn::model_builder(config.model);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::size_t k = 0; k < sim.partition.size(); ++k) {
    (void)rng.fork();  // legacy model-init fork, kept for RNG-stream parity
    clients.push_back(std::make_unique<fl::Client>(
        k, sim.train.subset(sim.partition[k]), rng.fork()));
  }
  Rng global_rng(config.seed ^ 0xabcdef12345ULL);
  fl::Server server(builder(global_rng), std::move(strategy), std::move(clients),
                    sim.test, config.server);
  server.set_adversary(std::make_shared<attack::ByzantineAdversary>(),
                       {3, 6, 9});
  server.run(rounds);
  return server.history();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("custom_strategy",
                "user-defined FedMedian strategy vs FedCav under Byzantine noise");
  cli.add_int("rounds", 12, "communication rounds");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  const metrics::TrainingHistory median = run_with(std::make_unique<FedMedian>(), rounds);
  const metrics::TrainingHistory fedcav =
      run_with(fl::make_strategy("fedcav"), rounds);

  std::printf("%-7s %-12s %-12s   (Byzantine noise injected in rounds 3, 6, 9)\n",
              "round", "FedMedian", "FedCav");
  for (std::size_t r = 0; r < rounds; ++r) {
    std::printf("%-7zu %-12.3f %-12.3f\n", r + 1, median[r].test_accuracy,
                fedcav[r].test_accuracy);
  }
  std::printf("\nFedMedian rides through the corrupted rounds (median discards the "
              "outlier update); FedCav dips and re-converges. Writing a strategy "
              "takes ~30 lines: subclass fl::AggregationStrategy and hand it to "
              "fl::Server.\n");
  return 0;
}
