// Heterogeneity study: sweep the partition schemes and the imbalance
// factor sigma on one dataset, printing the distribution statistics
// (classes per client, client/global divergence) next to the training
// outcome — a compact version of the paper's §3 observation study.
//
//   ./example_heterogeneity_study [--dataset digits] [--rounds 12]
#include <cstdio>

#include "src/data/stats.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/csv.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/string_util.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("heterogeneity_study",
                "sweep partition schemes and sigma; report divergence vs accuracy");
  cli.add_string("dataset", "digits", "digits | fashion | cifar");
  cli.add_string("strategy", "fedavg", "aggregation strategy under test");
  cli.add_int("rounds", 12, "communication rounds per setting");
  cli.add_int("clients", 24, "number of clients");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  struct Setting {
    const char* label;
    data::PartitionScheme scheme;
    double sigma;
  };
  const Setting settings[] = {
      {"iid", data::PartitionScheme::kIidBalanced, 0.0},
      {"noniid-2shard", data::PartitionScheme::kNonIidBalanced, 0.0},
      {"imbalanced sigma=300", data::PartitionScheme::kNonIidImbalanced, 300.0},
      {"imbalanced sigma=900", data::PartitionScheme::kNonIidImbalanced, 900.0},
      {"dirichlet alpha=0.3", data::PartitionScheme::kDirichlet, 0.0},
  };

  MarkdownTable table({"partition", "mean classes/client", "divergence", "best_acc",
                       "rounds_to_0.5"});
  for (const Setting& setting : settings) {
    fl::SimulationConfig config;
    config.dataset = cli.get_string("dataset");
    config.model = config.dataset == "cifar" ? "resnet" : "lenet5";
    config.strategy = cli.get_string("strategy");
    config.train_samples_per_class = 30;
    config.test_samples_per_class = 20;
    config.partition.scheme = setting.scheme;
    config.partition.sigma = setting.sigma;
    config.partition.dirichlet_alpha = 0.3;
    config.partition.num_clients = static_cast<std::size_t>(cli.get_int("clients"));
    config.server.local.lr = 0.05f;

    fl::Simulation sim = fl::build_simulation(config);

    const auto classes = data::classes_per_client(sim.train, sim.partition);
    double mean_classes = 0.0;
    for (std::size_t c : classes) mean_classes += static_cast<double>(c);
    mean_classes /= static_cast<double>(classes.size());
    const double divergence = data::mean_client_divergence(sim.train, sim.partition);

    sim.server->run(static_cast<std::size_t>(cli.get_int("rounds")));
    const auto to_half = sim.server->history().rounds_to_accuracy(0.5);

    table.add_row({setting.label, format_double(mean_classes, 1),
                   format_double(divergence, 3),
                   format_double(sim.server->history().best_accuracy(), 4),
                   to_half ? std::to_string(*to_half) : "n/a"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: divergence (total-variation distance between client and "
              "global class mix) predicts slower convergence and lower accuracy — "
              "the paper's SS3 observation.\n");
  return 0;
}
