// Quickstart: train FedCav on the synthetic digits corpus with 20
// clients holding imbalanced non-IID shards, and watch the global model
// converge. Mirrors the paper's default setup at CI scale.
//
//   ./example_quickstart [--rounds 15] [--strategy fedcav] [--clients 20]
//   ./example_quickstart --config configs/paper_digits.cfg
#include <cstdio>
#include <string>

#include "src/fl/simulation.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/config.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("quickstart", "minimal FedCav federated training run");
  cli.add_int("rounds", 15, "communication rounds");
  cli.add_int("clients", 20, "number of federated clients");
  cli.add_string("strategy", "fedcav", "fedavg | fedprox | fedcav | fedcav-noclip");
  cli.add_string("dataset", "digits", "digits | fashion | cifar");
  cli.add_string("model", "lenet5", "mlp | lenet5 | cnn9 | resnet");
  cli.add_string("config", "", "key=value experiment file overriding the flags");
  cli.add_string("trace", "", "enable telemetry; write chrome://tracing JSON here");
  cli.add_string("metrics", "", "enable telemetry; write metrics summary JSON here");
  // Fault injection (see DESIGN.md §10): all probabilities per message.
  cli.add_double("fault-drop", 0.0, "per-message drop probability");
  cli.add_double("fault-dup", 0.0, "per-message duplication probability");
  cli.add_double("fault-reorder", 0.0, "per-message reorder probability");
  cli.add_double("fault-corrupt", 0.0, "per-message bit-flip probability");
  cli.add_double("fault-truncate", 0.0, "per-message truncation probability");
  cli.add_double("fault-jitter", 0.0, "max extra latency per message (simulated s)");
  cli.add_int("fault-seed", 0, "seed of the per-link fault streams");
  cli.add_string("crash", "", "crash schedule rank:first-last[,...] (client i = rank i+1)");
  cli.add_int("quorum", 1, "min surviving updates to aggregate; below it the round skips");
  cli.add_int("max-retries", 3, "retransmissions per lost/corrupt message");
  cli.add_double("uplink-deadline", 0.0, "simulated-s budget per report (0 = off)");
  cli.add_string("quant", "none", "wire codec: none | fp16 | int8 (DESIGN.md §13)");
  cli.add_double("quant-keep", 1.0, "top-k fraction of the uplink delta to keep (0, 1]");
  cli.add_int("threads", 0, "intra-op kernel workers (0 = single-threaded kernels)");
  if (!cli.parse(argc, argv)) return 0;

  set_log_level(LogLevel::kWarn);

  fl::SimulationConfig config;
  config.dataset = cli.get_string("dataset");
  config.model = cli.get_string("model");
  config.strategy = cli.get_string("strategy");
  config.train_samples_per_class = 40;
  config.test_samples_per_class = 20;
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.partition.num_clients = static_cast<std::size_t>(cli.get_int("clients"));
  config.partition.sigma = 600.0;
  config.server.sample_ratio = 0.3;
  config.server.local.epochs = 5;
  config.server.local.batch_size = 10;
  config.server.local.lr = 0.05f;
  std::size_t rounds = static_cast<std::size_t>(cli.get_int("rounds"));

  if (!cli.get_string("config").empty()) {
    const Config file = Config::from_file(cli.get_string("config"));
    config.dataset = file.get_string("dataset", config.dataset);
    config.model = file.get_string("model", config.model);
    config.strategy = file.get_string("strategy", config.strategy);
    config.train_samples_per_class = static_cast<std::size_t>(
        file.get_int("train_samples_per_class",
                     static_cast<long long>(config.train_samples_per_class)));
    config.partition.num_clients = static_cast<std::size_t>(
        file.get_int("clients", static_cast<long long>(config.partition.num_clients)));
    config.partition.sigma = file.get_double("sigma", config.partition.sigma);
    config.server.sample_ratio =
        file.get_double("sample_ratio", config.server.sample_ratio);
    config.server.local.epochs = static_cast<std::size_t>(
        file.get_int("local_epochs", static_cast<long long>(config.server.local.epochs)));
    config.server.local.lr = static_cast<float>(
        file.get_double("lr", static_cast<double>(config.server.local.lr)));
    config.seed = static_cast<std::uint64_t>(
        file.get_int("seed", static_cast<long long>(config.seed)));
    rounds = static_cast<std::size_t>(
        file.get_int("rounds", static_cast<long long>(rounds)));
  }

  const std::string trace_path = cli.get_string("trace");
  const std::string metrics_path = cli.get_string("metrics");
  config.server.telemetry = !trace_path.empty() || !metrics_path.empty();

  comm::FaultPlan& faults = config.server.network.faults;
  faults.drop_prob = cli.get_double("fault-drop");
  faults.duplicate_prob = cli.get_double("fault-dup");
  faults.reorder_prob = cli.get_double("fault-reorder");
  faults.corrupt_prob = cli.get_double("fault-corrupt");
  faults.truncate_prob = cli.get_double("fault-truncate");
  faults.jitter_s = cli.get_double("fault-jitter");
  faults.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed"));
  faults.crashes = comm::parse_crash_spec(cli.get_string("crash"));
  config.server.min_aggregate_clients = static_cast<std::size_t>(cli.get_int("quorum"));
  config.server.max_retries = static_cast<std::size_t>(cli.get_int("max-retries"));
  config.server.uplink_deadline_s = cli.get_double("uplink-deadline");
  config.server.quant = comm::quant_mode_from_string(cli.get_string("quant"));
  config.server.quant_keep = cli.get_double("quant-keep");

  // Intra-op parallelism: route the tensor kernels through a pool. The
  // tile ownership is fixed (see src/tensor/parallel.hpp), so any worker
  // count produces bit-identical results.
  std::unique_ptr<ThreadPool> kernel_pool;
  const int threads = cli.get_int("threads");
  if (threads > 0) {
    kernel_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    ops::set_kernel_pool(kernel_pool.get());
  }

  fl::Simulation sim = fl::build_simulation(config);
  std::printf("dataset=%s model=%s strategy=%s clients=%zu params=%zu\n",
              config.dataset.c_str(), config.model.c_str(), config.strategy.c_str(),
              sim.partition.size(), sim.server->global_weights().size());
  std::printf("%-6s %-10s %-10s %-14s\n", "round", "accuracy", "loss", "mean_inf_loss");

  for (std::size_t r = 0; r < rounds; ++r) {
    const metrics::RoundRecord rec = sim.server->run_round();
    std::printf("%-6zu %-10.4f %-10.4f %-14.4f\n", rec.round, rec.test_accuracy,
                rec.test_loss, rec.mean_inference_loss);
  }
  std::printf("best accuracy: %.4f\n", sim.server->history().best_accuracy());

  if (faults.enabled() && sim.server->network() != nullptr) {
    const comm::FaultStats f = sim.server->network()->fault_stats();
    std::uint64_t retries = 0;
    std::uint64_t crc_failures = 0;
    std::size_t skipped = 0;
    for (const auto& rec : sim.server->history().records()) {
      retries += rec.retries;
      crc_failures += rec.crc_failures;
      if (rec.skipped) ++skipped;
    }
    std::printf(
        "faults: dropped=%llu crash_dropped=%llu dup=%llu reorder=%llu "
        "corrupt=%llu truncate=%llu delivered=%llu jitter=%.3fs\n",
        static_cast<unsigned long long>(f.dropped),
        static_cast<unsigned long long>(f.crash_dropped),
        static_cast<unsigned long long>(f.duplicated),
        static_cast<unsigned long long>(f.reordered),
        static_cast<unsigned long long>(f.corrupted),
        static_cast<unsigned long long>(f.truncated),
        static_cast<unsigned long long>(f.delivered), f.jitter_seconds);
    std::printf("recovery: retries=%llu crc_failures=%llu rounds_skipped=%zu\n",
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(crc_failures), skipped);
  }

  if (config.server.telemetry) {
    sim.server->write_telemetry(trace_path, metrics_path);
    double phase_sum = 0.0;
    double wall = 0.0;
    for (const auto& rec : sim.server->history().records()) {
      phase_sum += rec.phases.sum();
      wall += rec.wall_seconds;
    }
    std::printf("telemetry: %.3fs across phases of %.3fs round wall time (%.1f%%)\n",
                phase_sum, wall, wall > 0.0 ? 100.0 * phase_sum / wall : 0.0);
    if (!trace_path.empty()) std::printf("trace written to %s\n", trace_path.c_str());
    if (!metrics_path.empty()) std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
