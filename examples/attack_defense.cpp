// Attack & defense demo: run the same model-replacement attack three
// times — against FedAvg, against FedCav without detection, and against
// FedCav with detection + reverse — and print the three trajectories
// side by side (the §4.4 story in one screen).
//
//   ./example_attack_defense [--attack-round 8] [--rounds 16]
#include <cstdio>

#include "src/fl/simulation.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/string_util.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("attack_defense",
                "model replacement vs FedAvg / FedCav / FedCav+detection");
  cli.add_int("rounds", 16, "communication rounds");
  cli.add_int("attack-round", 8, "round the adversary strikes");
  cli.add_double("poison", 1.0, "label-flip fraction for the malicious model");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  const auto attack_round = static_cast<std::size_t>(cli.get_int("attack-round"));

  struct Variant {
    const char* label;
    const char* strategy;
    bool detection;
  };
  const Variant variants[] = {
      {"FedAvg (undefended)", "fedavg", false},
      {"FedCav (no detection)", "fedcav", false},
      {"FedCav + detection", "fedcav", true},
  };

  std::vector<metrics::TrainingHistory> histories;
  for (const Variant& variant : variants) {
    fl::SimulationConfig config;
    config.dataset = "digits";
    config.model = "lenet5";
    config.strategy = variant.strategy;
    config.train_samples_per_class = 30;
    config.test_samples_per_class = 20;
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.num_clients = 24;
    config.partition.sigma = 600.0;
    config.server.local.lr = 0.05f;
    config.server.detection_enabled = variant.detection;
    config.attack = "replacement";
    config.attack_rounds = {attack_round};
    config.attack_poison_fraction = cli.get_double("poison");

    fl::Simulation sim = fl::build_simulation(config);
    sim.server->run(rounds);
    histories.push_back(sim.server->history());
  }

  std::printf("%-7s %-22s %-22s %-22s\n", "round", variants[0].label, variants[1].label,
              variants[2].label);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::string marks[3];
    for (std::size_t v = 0; v < 3; ++v) {
      const auto& rec = histories[v][r];
      marks[v] = format_double(rec.test_accuracy, 3);
      if (rec.attacked) marks[v] += " <-attack";
      if (rec.reversed) marks[v] += " <-reverse";
    }
    std::printf("%-7zu %-22s %-22s %-22s\n", r + 1, marks[0].c_str(), marks[1].c_str(),
                marks[2].c_str());
  }

  for (std::size_t v = 0; v < 3; ++v) {
    const auto recovery = histories[v].recovery_rounds(0.9);
    std::printf("%s: recovery to 90%% of pre-attack accuracy in %s rounds\n",
                variants[v].label,
                recovery ? std::to_string(*recovery).c_str() : ">horizon");
  }
  return 0;
}
