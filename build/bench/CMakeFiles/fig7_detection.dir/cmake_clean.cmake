file(REMOVE_RECURSE
  "CMakeFiles/fig7_detection.dir/bench_common.cpp.o"
  "CMakeFiles/fig7_detection.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig7_detection.dir/fig7_detection.cpp.o"
  "CMakeFiles/fig7_detection.dir/fig7_detection.cpp.o.d"
  "fig7_detection"
  "fig7_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
