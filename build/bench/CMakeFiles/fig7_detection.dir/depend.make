# Empty dependencies file for fig7_detection.
# This may be replaced when dependencies are built.
