file(REMOVE_RECURSE
  "CMakeFiles/table4_sigma_accuracy.dir/bench_common.cpp.o"
  "CMakeFiles/table4_sigma_accuracy.dir/bench_common.cpp.o.d"
  "CMakeFiles/table4_sigma_accuracy.dir/table4_sigma_accuracy.cpp.o"
  "CMakeFiles/table4_sigma_accuracy.dir/table4_sigma_accuracy.cpp.o.d"
  "table4_sigma_accuracy"
  "table4_sigma_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sigma_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
