# Empty dependencies file for table4_sigma_accuracy.
# This may be replaced when dependencies are built.
