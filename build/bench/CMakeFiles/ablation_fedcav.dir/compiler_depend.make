# Empty compiler generated dependencies file for ablation_fedcav.
# This may be replaced when dependencies are built.
