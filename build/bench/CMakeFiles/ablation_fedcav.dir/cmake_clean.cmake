file(REMOVE_RECURSE
  "CMakeFiles/ablation_fedcav.dir/ablation_fedcav.cpp.o"
  "CMakeFiles/ablation_fedcav.dir/ablation_fedcav.cpp.o.d"
  "CMakeFiles/ablation_fedcav.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_fedcav.dir/bench_common.cpp.o.d"
  "ablation_fedcav"
  "ablation_fedcav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fedcav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
