file(REMOVE_RECURSE
  "CMakeFiles/fig4_fresh_class.dir/bench_common.cpp.o"
  "CMakeFiles/fig4_fresh_class.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig4_fresh_class.dir/fig4_fresh_class.cpp.o"
  "CMakeFiles/fig4_fresh_class.dir/fig4_fresh_class.cpp.o.d"
  "fig4_fresh_class"
  "fig4_fresh_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fresh_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
