# Empty dependencies file for fig4_fresh_class.
# This may be replaced when dependencies are built.
