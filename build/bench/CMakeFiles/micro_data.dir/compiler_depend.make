# Empty compiler generated dependencies file for micro_data.
# This may be replaced when dependencies are built.
