file(REMOVE_RECURSE
  "CMakeFiles/fig2_heterogeneity.dir/bench_common.cpp.o"
  "CMakeFiles/fig2_heterogeneity.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig2_heterogeneity.dir/fig2_heterogeneity.cpp.o"
  "CMakeFiles/fig2_heterogeneity.dir/fig2_heterogeneity.cpp.o.d"
  "fig2_heterogeneity"
  "fig2_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
