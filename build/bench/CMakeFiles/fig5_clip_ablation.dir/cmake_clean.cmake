file(REMOVE_RECURSE
  "CMakeFiles/fig5_clip_ablation.dir/bench_common.cpp.o"
  "CMakeFiles/fig5_clip_ablation.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig5_clip_ablation.dir/fig5_clip_ablation.cpp.o"
  "CMakeFiles/fig5_clip_ablation.dir/fig5_clip_ablation.cpp.o.d"
  "fig5_clip_ablation"
  "fig5_clip_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_clip_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
