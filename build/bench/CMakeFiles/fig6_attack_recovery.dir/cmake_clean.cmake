file(REMOVE_RECURSE
  "CMakeFiles/fig6_attack_recovery.dir/bench_common.cpp.o"
  "CMakeFiles/fig6_attack_recovery.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig6_attack_recovery.dir/fig6_attack_recovery.cpp.o"
  "CMakeFiles/fig6_attack_recovery.dir/fig6_attack_recovery.cpp.o.d"
  "fig6_attack_recovery"
  "fig6_attack_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_attack_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
