# Empty compiler generated dependencies file for fig6_attack_recovery.
# This may be replaced when dependencies are built.
