file(REMOVE_RECURSE
  "CMakeFiles/micro_fedcav.dir/micro_fedcav.cpp.o"
  "CMakeFiles/micro_fedcav.dir/micro_fedcav.cpp.o.d"
  "micro_fedcav"
  "micro_fedcav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fedcav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
