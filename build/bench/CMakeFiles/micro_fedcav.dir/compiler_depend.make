# Empty compiler generated dependencies file for micro_fedcav.
# This may be replaced when dependencies are built.
