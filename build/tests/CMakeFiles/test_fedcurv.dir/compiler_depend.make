# Empty compiler generated dependencies file for test_fedcurv.
# This may be replaced when dependencies are built.
