file(REMOVE_RECURSE
  "CMakeFiles/test_fedcurv.dir/test_fedcurv.cpp.o"
  "CMakeFiles/test_fedcurv.dir/test_fedcurv.cpp.o.d"
  "test_fedcurv"
  "test_fedcurv.pdb"
  "test_fedcurv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fedcurv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
