# Empty compiler generated dependencies file for test_zoo_training.
# This may be replaced when dependencies are built.
