file(REMOVE_RECURSE
  "CMakeFiles/test_zoo_training.dir/test_zoo_training.cpp.o"
  "CMakeFiles/test_zoo_training.dir/test_zoo_training.cpp.o.d"
  "test_zoo_training"
  "test_zoo_training.pdb"
  "test_zoo_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zoo_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
