file(REMOVE_RECURSE
  "CMakeFiles/fedcav_test_helpers.dir/test_helpers.cpp.o"
  "CMakeFiles/fedcav_test_helpers.dir/test_helpers.cpp.o.d"
  "libfedcav_test_helpers.a"
  "libfedcav_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcav_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
