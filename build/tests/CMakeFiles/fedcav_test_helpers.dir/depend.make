# Empty dependencies file for fedcav_test_helpers.
# This may be replaced when dependencies are built.
