file(REMOVE_RECURSE
  "libfedcav_test_helpers.a"
)
