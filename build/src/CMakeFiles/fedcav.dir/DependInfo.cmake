
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/label_flip.cpp" "src/CMakeFiles/fedcav.dir/attack/label_flip.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/attack/label_flip.cpp.o.d"
  "/root/repo/src/attack/loss_inflation.cpp" "src/CMakeFiles/fedcav.dir/attack/loss_inflation.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/attack/loss_inflation.cpp.o.d"
  "/root/repo/src/attack/model_replacement.cpp" "src/CMakeFiles/fedcav.dir/attack/model_replacement.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/attack/model_replacement.cpp.o.d"
  "/root/repo/src/comm/compression.cpp" "src/CMakeFiles/fedcav.dir/comm/compression.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/comm/compression.cpp.o.d"
  "/root/repo/src/comm/message.cpp" "src/CMakeFiles/fedcav.dir/comm/message.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/comm/message.cpp.o.d"
  "/root/repo/src/comm/network.cpp" "src/CMakeFiles/fedcav.dir/comm/network.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/comm/network.cpp.o.d"
  "/root/repo/src/core/contribution.cpp" "src/CMakeFiles/fedcav.dir/core/contribution.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/core/contribution.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/CMakeFiles/fedcav.dir/core/detector.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/core/detector.cpp.o.d"
  "/root/repo/src/core/fedcav.cpp" "src/CMakeFiles/fedcav.dir/core/fedcav.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/core/fedcav.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fedcav.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/fresh.cpp" "src/CMakeFiles/fedcav.dir/data/fresh.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/fresh.cpp.o.d"
  "/root/repo/src/data/mnist_idx.cpp" "src/CMakeFiles/fedcav.dir/data/mnist_idx.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/mnist_idx.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/CMakeFiles/fedcav.dir/data/partition.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/partition.cpp.o.d"
  "/root/repo/src/data/stats.cpp" "src/CMakeFiles/fedcav.dir/data/stats.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/stats.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/fedcav.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/fl/centralized.cpp" "src/CMakeFiles/fedcav.dir/fl/centralized.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/centralized.cpp.o.d"
  "/root/repo/src/fl/client.cpp" "src/CMakeFiles/fedcav.dir/fl/client.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/client.cpp.o.d"
  "/root/repo/src/fl/compressed.cpp" "src/CMakeFiles/fedcav.dir/fl/compressed.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/compressed.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "src/CMakeFiles/fedcav.dir/fl/fedavg.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/fedavg.cpp.o.d"
  "/root/repo/src/fl/fedcurv.cpp" "src/CMakeFiles/fedcav.dir/fl/fedcurv.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/fedcurv.cpp.o.d"
  "/root/repo/src/fl/fedprox.cpp" "src/CMakeFiles/fedcav.dir/fl/fedprox.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/fedprox.cpp.o.d"
  "/root/repo/src/fl/robust.cpp" "src/CMakeFiles/fedcav.dir/fl/robust.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/robust.cpp.o.d"
  "/root/repo/src/fl/sampler.cpp" "src/CMakeFiles/fedcav.dir/fl/sampler.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/sampler.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/CMakeFiles/fedcav.dir/fl/server.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/server.cpp.o.d"
  "/root/repo/src/fl/simulation.cpp" "src/CMakeFiles/fedcav.dir/fl/simulation.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/simulation.cpp.o.d"
  "/root/repo/src/fl/strategy.cpp" "src/CMakeFiles/fedcav.dir/fl/strategy.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/fl/strategy.cpp.o.d"
  "/root/repo/src/metrics/evaluation.cpp" "src/CMakeFiles/fedcav.dir/metrics/evaluation.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/metrics/evaluation.cpp.o.d"
  "/root/repo/src/metrics/history.cpp" "src/CMakeFiles/fedcav.dir/metrics/history.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/metrics/history.cpp.o.d"
  "/root/repo/src/metrics/per_class.cpp" "src/CMakeFiles/fedcav.dir/metrics/per_class.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/metrics/per_class.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/fedcav.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/fedcav.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/fedcav.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/fedcav.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/CMakeFiles/fedcav.dir/nn/flatten.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/flatten.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/fedcav.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/fedcav.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/fedcav.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/fedcav.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/fedcav.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool2d.cpp" "src/CMakeFiles/fedcav.dir/nn/pool2d.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/pool2d.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/CMakeFiles/fedcav.dir/nn/residual.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/residual.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/CMakeFiles/fedcav.dir/nn/schedule.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/schedule.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/fedcav.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/zoo.cpp" "src/CMakeFiles/fedcav.dir/nn/zoo.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/nn/zoo.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/fedcav.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fedcav.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/CMakeFiles/fedcav.dir/tensor/serialize.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/tensor/serialize.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/fedcav.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fedcav.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/utils/cli.cpp" "src/CMakeFiles/fedcav.dir/utils/cli.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/cli.cpp.o.d"
  "/root/repo/src/utils/config.cpp" "src/CMakeFiles/fedcav.dir/utils/config.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/config.cpp.o.d"
  "/root/repo/src/utils/csv.cpp" "src/CMakeFiles/fedcav.dir/utils/csv.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/csv.cpp.o.d"
  "/root/repo/src/utils/error.cpp" "src/CMakeFiles/fedcav.dir/utils/error.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/error.cpp.o.d"
  "/root/repo/src/utils/logging.cpp" "src/CMakeFiles/fedcav.dir/utils/logging.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/logging.cpp.o.d"
  "/root/repo/src/utils/rng.cpp" "src/CMakeFiles/fedcav.dir/utils/rng.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/rng.cpp.o.d"
  "/root/repo/src/utils/string_util.cpp" "src/CMakeFiles/fedcav.dir/utils/string_util.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/string_util.cpp.o.d"
  "/root/repo/src/utils/threadpool.cpp" "src/CMakeFiles/fedcav.dir/utils/threadpool.cpp.o" "gcc" "src/CMakeFiles/fedcav.dir/utils/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
