# Empty dependencies file for fedcav.
# This may be replaced when dependencies are built.
