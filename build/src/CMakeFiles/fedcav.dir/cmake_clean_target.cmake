file(REMOVE_RECURSE
  "libfedcav.a"
)
