# Empty compiler generated dependencies file for example_heterogeneity_study.
# This may be replaced when dependencies are built.
