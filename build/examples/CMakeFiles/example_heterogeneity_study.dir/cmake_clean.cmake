file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneity_study.dir/heterogeneity_study.cpp.o"
  "CMakeFiles/example_heterogeneity_study.dir/heterogeneity_study.cpp.o.d"
  "example_heterogeneity_study"
  "example_heterogeneity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
