file(REMOVE_RECURSE
  "CMakeFiles/example_custom_strategy.dir/custom_strategy.cpp.o"
  "CMakeFiles/example_custom_strategy.dir/custom_strategy.cpp.o.d"
  "example_custom_strategy"
  "example_custom_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
