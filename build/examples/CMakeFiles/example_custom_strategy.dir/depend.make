# Empty dependencies file for example_custom_strategy.
# This may be replaced when dependencies are built.
