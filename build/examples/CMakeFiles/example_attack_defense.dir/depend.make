# Empty dependencies file for example_attack_defense.
# This may be replaced when dependencies are built.
