file(REMOVE_RECURSE
  "CMakeFiles/example_attack_defense.dir/attack_defense.cpp.o"
  "CMakeFiles/example_attack_defense.dir/attack_defense.cpp.o.d"
  "example_attack_defense"
  "example_attack_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
