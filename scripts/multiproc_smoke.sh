#!/usr/bin/env bash
# Multi-process federation smoke (DESIGN.md §14/§16): launch
# fedcav_daemon + N fedcav_worker processes from the given build tree —
# over a Unix socket in a throwaway temp dir, or over an authenticated
# TCP loopback port with "tcp" mode — and require every process to exit
# 0 and the daemon to have written one CSV row per round. TCP mode also
# runs a wrong-token join against a fresh daemon and requires BOTH
# processes to fail fast with nonzero exits (the abort_on_reject path).
# check.sh runs this under `timeout` for both the plain and ASan trees,
# so a protocol hang fails the gate instead of wedging it.
#
# Usage: scripts/multiproc_smoke.sh <build-dir> [clients] [rounds] [mode]
#   mode: "unix" (default) | "tcp"
set -euo pipefail

build_dir="${1:?usage: multiproc_smoke.sh <build-dir> [clients] [rounds] [unix|tcp]}"
clients="${2:-4}"
rounds="${3:-2}"
mode="${4:-unix}"

daemon="${build_dir}/tools/fedcav_daemon"
worker="${build_dir}/tools/fedcav_worker"
[[ -x "${daemon}" && -x "${worker}" ]] || {
  echo "multiproc_smoke: tools not built in ${build_dir}" >&2
  exit 1
}

tmp="$(mktemp -d /tmp/fedcav-smoke.XXXXXX)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "${pid}" 2>/dev/null || true
  done
  rm -rf "${tmp}"
}
trap cleanup EXIT

csv="${tmp}/history.csv"
endpoint=()
if [[ "${mode}" == "tcp" ]]; then
  # PID-derived loopback port: parallel smoke invocations must not
  # collide, and SO_REUSEADDR covers TIME_WAIT between the happy-path
  # run and the reject run below (which uses port+1).
  port="$((20000 + $$ % 20000))"
  endpoint=(--tcp "127.0.0.1:${port}" --auth-token smoke-token)
else
  endpoint=(--socket "${tmp}/fed.sock")
fi

"${daemon}" "${endpoint[@]}" --clients "${clients}" --rounds "${rounds}" \
  --csv "${csv}" &
pids+=("$!")
for ((w = 1; w <= clients; ++w)); do
  "${worker}" "${endpoint[@]}" --clients "${clients}" --rank "${w}" &
  pids+=("$!")
done

status=0
for pid in "${pids[@]}"; do
  wait "${pid}" || status=$?
done
pids=()
[[ "${status}" -eq 0 ]] || {
  echo "multiproc_smoke: a federation process exited ${status}" >&2
  exit "${status}"
}

row_count="$(grep -c '^[0-9]' "${csv}")"
[[ "${row_count}" -eq "${rounds}" ]] || {
  echo "multiproc_smoke: expected ${rounds} CSV rounds, got ${row_count}" >&2
  exit 1
}

if [[ "${mode}" == "tcp" ]]; then
  # Wrong-token reject: the daemon must abort on the rejected join (not
  # wait out its accept timeout) and the worker must fail its connect —
  # both with nonzero exits.
  reject_port="$((port + 1))"
  "${daemon}" --tcp "127.0.0.1:${reject_port}" --auth-token right-token \
    --clients 1 --rounds 1 &
  daemon_pid="$!"
  pids+=("${daemon_pid}")
  "${worker}" --tcp "127.0.0.1:${reject_port}" --auth-token wrong-token \
    --clients 1 --rank 1 &
  worker_pid="$!"
  pids+=("${worker_pid}")
  daemon_status=0
  worker_status=0
  wait "${daemon_pid}" || daemon_status=$?
  wait "${worker_pid}" || worker_status=$?
  pids=()
  [[ "${daemon_status}" -ne 0 ]] || {
    echo "multiproc_smoke: daemon accepted a wrong-token join" >&2
    exit 1
  }
  [[ "${worker_status}" -ne 0 ]] || {
    echo "multiproc_smoke: worker joined with the wrong token" >&2
    exit 1
  }
fi

echo "multiproc_smoke: ${clients} workers x ${rounds} rounds (${mode}) OK"
