#!/usr/bin/env bash
# Multi-process federation smoke (DESIGN.md §14): launch fedcav_daemon +
# N fedcav_worker processes from the given build tree over a Unix socket
# in a throwaway temp dir, and require every process to exit 0 and the
# daemon to have written one CSV row per round. check.sh runs this under
# `timeout` for both the plain and ASan trees, so a protocol hang fails
# the gate instead of wedging it.
#
# Usage: scripts/multiproc_smoke.sh <build-dir> [clients] [rounds]
set -euo pipefail

build_dir="${1:?usage: multiproc_smoke.sh <build-dir> [clients] [rounds]}"
clients="${2:-4}"
rounds="${3:-2}"

daemon="${build_dir}/tools/fedcav_daemon"
worker="${build_dir}/tools/fedcav_worker"
[[ -x "${daemon}" && -x "${worker}" ]] || {
  echo "multiproc_smoke: tools not built in ${build_dir}" >&2
  exit 1
}

tmp="$(mktemp -d /tmp/fedcav-smoke.XXXXXX)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -9 "${pid}" 2>/dev/null || true
  done
  rm -rf "${tmp}"
}
trap cleanup EXIT

sock="${tmp}/fed.sock"
csv="${tmp}/history.csv"

"${daemon}" --socket "${sock}" --clients "${clients}" --rounds "${rounds}" \
  --csv "${csv}" &
pids+=("$!")
for ((w = 1; w <= clients; ++w)); do
  "${worker}" --socket "${sock}" --clients "${clients}" --rank "${w}" &
  pids+=("$!")
done

status=0
for pid in "${pids[@]}"; do
  wait "${pid}" || status=$?
done
pids=()
[[ "${status}" -eq 0 ]] || {
  echo "multiproc_smoke: a federation process exited ${status}" >&2
  exit "${status}"
}

row_count="$(grep -c '^[0-9]' "${csv}")"
[[ "${row_count}" -eq "${rounds}" ]] || {
  echo "multiproc_smoke: expected ${rounds} CSV rounds, got ${row_count}" >&2
  exit 1
}
echo "multiproc_smoke: ${clients} workers x ${rounds} rounds OK"
