#!/usr/bin/env bash
# Tier-1 gate, run from anywhere: configure + build + ctest, first in the
# default configuration and then again with FEDCAV_SANITIZE=ON
# (ASan+UBSan), each in its own build tree so the two configurations
# never thrash one cache.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  local cmake_flags=("$@")
  echo "==> configure ${build_dir} ${cmake_flags[*]:-}"
  cmake -B "${build_dir}" -S "${repo}" "${cmake_flags[@]}" >/dev/null
  echo "==> build ${build_dir}"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==> ctest ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" "${ctest_args[@]}"
}

ctest_args=("$@")

run_config "${repo}/build"
run_config "${repo}/build-sanitize" -DFEDCAV_SANITIZE=ON

echo "OK: plain and sanitized tier-1 suites passed"
