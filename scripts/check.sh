#!/usr/bin/env bash
# Tier-1 gate, run from anywhere: configure + build + ctest, first in the
# default configuration, then with FEDCAV_SANITIZE=ON (ASan+UBSan), and
# finally with FEDCAV_SANITIZE=thread (TSan) over the concurrency-heavy
# suites (thread pool, obs tracer/registry, server rounds, and the
# fault-injection chaos/golden suites — the retry protocol runs on pool
# threads, so TSan coverage there is mandatory). The plain build also
# replays the kernel + golden suites under FEDCAV_TEST_THREADS=1 and =4
# (parallel-kernel determinism gate, DESIGN.md §13) and under
# FEDCAV_TEST_SHARDS=1 and =4 (shard-determinism gate, DESIGN.md §15);
# the TSan build replays both hooks at the 4-way fan-out. Each
# configuration gets its own build tree so they never thrash one cache.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  local filter="$2"
  shift 2
  local cmake_flags=("$@")
  echo "==> configure ${build_dir} ${cmake_flags[*]:-}"
  cmake -B "${build_dir}" -S "${repo}" "${cmake_flags[@]}" >/dev/null
  echo "==> build ${build_dir}"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==> ctest ${build_dir}"
  local filter_args=()
  [[ -n "${filter}" ]] && filter_args=(-R "${filter}")
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
    "${filter_args[@]}" "${ctest_args[@]}"
}

ctest_args=("$@")

run_config "${repo}/build" ""
# Parallel-kernel determinism gate (DESIGN.md §13): replay the kernel +
# golden suites with the FEDCAV_TEST_THREADS hook attaching a 1-worker
# and a 4-worker kernel pool. The goldens pin exact accuracy/loss, so a
# pass here proves the kernels are bit-identical at every fan-out.
kernel_filter="Gemm|GemmCrossCheck|Conv2D|ConvBatched|Activation|MaxPool|AvgPool|GlobalAvgPool|Loss|GradCheck|Evaluate|ZooTraining|GoldenRun"
for threads in 1 4; do
  echo "==> ctest kernel suites, FEDCAV_TEST_THREADS=${threads} (plain)"
  FEDCAV_TEST_THREADS="${threads}" ctest --test-dir "${repo}/build" \
    --output-on-failure -j "${jobs}" -R "${kernel_filter}" "${ctest_args[@]}"
done
# Shard-determinism gate (DESIGN.md §15): replay the golden, chaos-seed,
# and kernel suites with the FEDCAV_TEST_SHARDS hook forcing every round
# through a 1-shard and a 4-shard engine. The goldens and committed
# chaos seeds pin exact values, so a pass proves the shard count is
# invisible to results at suite scale.
shard_filter="${kernel_filter}|ChaosSeeds|RoundEngine|Server|Integration"
for shards in 1 4; do
  echo "==> ctest shard suites, FEDCAV_TEST_SHARDS=${shards} (plain)"
  FEDCAV_TEST_SHARDS="${shards}" ctest --test-dir "${repo}/build" \
    --output-on-failure -j "${jobs}" -R "${shard_filter}" "${ctest_args[@]}"
done
# Cohort-scaling memory gate (replica-pool bound, DESIGN.md §11 + §15):
# smoke runs of the bench enforce that peak round memory does not scale
# with the cohort — single-shard, and sharded with a 4096-client round —
# in both the plain and sanitized builds. The bench also self-gates
# shard-count bit-identity of the emitted CSV and --seed reproducibility.
echo "==> cohort_scale smoke (plain)"
timeout 300 "${repo}/build/bench/cohort_scale" --smoke \
  --out "${repo}/build/BENCH_cohort_smoke.json"
echo "==> cohort_scale smoke --shards 4 (plain)"
timeout 300 "${repo}/build/bench/cohort_scale" --smoke --shards 4 \
  --out "${repo}/build/BENCH_cohort_smoke_sharded.json"
# Time-boxed chaos-search smoke (DESIGN.md §12): a short adaptive search
# over the fault-plan space must find zero invariant violations. The
# budget keeps this inside a few seconds; the full regression corpus is
# replayed by ctest (label: chaos).
echo "==> chaos_search smoke (plain)"
timeout 300 "${repo}/build/tools/chaos_search" --budget 25 --seed 1
# Multi-process federation smoke (DESIGN.md §14/§16): daemon + workers
# over a real Unix socket, then over an authenticated TCP loopback
# (which also exercises the wrong-token fail-fast reject); the watchdog
# timeout turns a protocol hang into a gate failure instead of a wedged
# CI job.
echo "==> multiproc smoke (plain)"
timeout 300 "${repo}/scripts/multiproc_smoke.sh" "${repo}/build"
echo "==> multiproc smoke, tcp (plain)"
timeout 300 "${repo}/scripts/multiproc_smoke.sh" "${repo}/build" 4 2 tcp

run_config "${repo}/build-sanitize" "" -DFEDCAV_SANITIZE=ON
echo "==> cohort_scale smoke (sanitize)"
timeout 600 "${repo}/build-sanitize/bench/cohort_scale" --smoke \
  --out "${repo}/build-sanitize/BENCH_cohort_smoke.json"
echo "==> cohort_scale smoke --shards 4 (sanitize)"
timeout 600 "${repo}/build-sanitize/bench/cohort_scale" --smoke --shards 4 \
  --out "${repo}/build-sanitize/BENCH_cohort_smoke_sharded.json"
echo "==> chaos_search smoke (sanitize)"
timeout 600 "${repo}/build-sanitize/tools/chaos_search" --budget 10 --seed 1
echo "==> multiproc smoke (sanitize)"
timeout 600 "${repo}/scripts/multiproc_smoke.sh" "${repo}/build-sanitize" 2 2
echo "==> multiproc smoke, tcp (sanitize)"
timeout 600 "${repo}/scripts/multiproc_smoke.sh" "${repo}/build-sanitize" 2 2 tcp

run_config "${repo}/build-tsan" \
  "ThreadPool|Obs|CheckpointResume|Server|Integration|Chaos|Faults|GoldenRun" \
  -DFEDCAV_SANITIZE=thread
# Race-check the parallel kernels themselves: the same kernel suites the
# plain build replays, but under TSan with a 4-worker kernel pool
# attached via the FEDCAV_TEST_THREADS hook.
echo "==> ctest kernel suites, FEDCAV_TEST_THREADS=4 (tsan)"
FEDCAV_TEST_THREADS=4 ctest --test-dir "${repo}/build-tsan" \
  --output-on-failure -j "${jobs}" -R "${kernel_filter}" "${ctest_args[@]}"
# Race-check the sharded round engine: the wave pipeline's produce side
# runs on pool workers while the fold side hops threads, so the golden,
# chaos-seed, and server suites replay under TSan at a 4-shard fan-out.
echo "==> ctest shard suites, FEDCAV_TEST_SHARDS=4 (tsan)"
FEDCAV_TEST_SHARDS=4 ctest --test-dir "${repo}/build-tsan" \
  --output-on-failure -j "${jobs}" -R "${shard_filter}" "${ctest_args[@]}"

echo "OK: plain, sanitized, and thread-sanitized tier-1 suites passed"
