// Worker rank of a multi-process federation (DESIGN.md §14/§16).
//
// Builds the same simulation as the daemon (identical seeds → identical
// shards and model init), joins the daemon's socket (--socket PATH) or
// TCP address (--tcp HOST:PORT, optionally with --auth-token), and then
// serves round downlinks: compute the inference loss, uplink the
// metadata scalars, train locally, uplink the full report. The worker
// keeps no round schedule of its own — it reacts to whatever the daemon
// sends and exits when the daemon closes the connection (EOF is
// shutdown).
//
// With --derived-seeds the worker also evaluates its own straggler coin
// (a pure function of seed/round/client id — DESIGN.md §16): a
// straggled round uplinks the metadata scalars but skips training and
// the report, exactly like the in-process path, so sampled/straggler
// configs stay bit-identical across process layouts.
//
//   ./fedcav_worker --socket /tmp/fed.sock --clients 4 [--rank 2]
//
// The --exit-* flags are failure-injection hooks for the integration
// tests: they kill the process at protocol-relevant instants so the
// daemon's dropout / upload-failure accounting can be asserted.
#include <cstdio>
#include <exception>

#include <unistd.h>

#include "src/comm/socket_transport.hpp"
#include "src/comm/tcp_transport.hpp"
#include "src/fl/simulation.hpp"
#include "src/nn/zoo.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/logging.hpp"
#include "tools/federation_common.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("fedcav_worker", "worker rank of a socket federation");
  tools::add_federation_flags(cli);
  cli.add_int("rank", 0, "worker rank to join as (0 = daemon assigns)");
  cli.add_int("exit-before-round", 0,
              "TEST: exit upon receiving round N's downlink (dropout)");
  cli.add_int("exit-after-metadata", 0,
              "TEST: exit right after round N's metadata uplink "
              "(upload failure)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string socket_path = cli.get_string("socket");
  const std::string tcp_address = cli.get_string("tcp");
  if (socket_path.empty() == tcp_address.empty()) {
    std::fprintf(stderr,
                 "fedcav_worker: exactly one of --socket or --tcp is required\n");
    return 2;
  }

  set_log_level(LogLevel::kWarn);
  try {
    const fl::SimulationConfig config = tools::federation_config(cli);
    fl::Simulation sim = fl::build_simulation(config);

    comm::StreamTransportConfig tcfg;
    tcfg.auth_token = cli.get_string("auth-token");
    const long long rank_flag = cli.get_int("rank");
    const std::uint64_t want_rank =
        rank_flag == 0 ? comm::kAnyRank : static_cast<std::uint64_t>(rank_flag);
    std::unique_ptr<comm::StreamTransport> transport;
    if (!tcp_address.empty()) {
      transport = comm::TcpTransport::connect(tcp_address, want_rank, tcfg);
    } else {
      transport = comm::SocketTransport::connect(socket_path, want_rank, tcfg);
    }
    const std::size_t rank = transport->local_rank();
    constexpr std::size_t kServerRank = 0;

    fl::Client& client = sim.server->client_at(rank - 1);
    const fl::LocalTrainConfig local = sim.server->effective_local();
    // Same init stream the in-process server seeds its global model
    // with; the downlink overwrites the weights every round anyway.
    Rng model_rng(config.seed ^ 0xabcdef12345ULL);
    std::unique_ptr<nn::Model> model = nn::model_builder(config.model)(model_rng);

    const bool quant_on = config.server.quant != comm::QuantMode::kNone;
    const comm::MessageType down_type =
        quant_on ? comm::MessageType::kQuantGlobalModel
                 : comm::MessageType::kGlobalModel;
    const std::size_t exit_before =
        static_cast<std::size_t>(cli.get_int("exit-before-round"));
    const std::size_t exit_after_meta =
        static_cast<std::size_t>(cli.get_int("exit-after-metadata"));

    std::size_t last_round = 0;
    comm::Envelope meta_env;    // cached for NACK retransmission
    comm::Envelope report_env;  // ditto

    for (;;) {
      std::optional<ByteBuffer> wire = transport->try_recv_wire(rank, kServerRank);
      if (!wire.has_value()) {
        if (transport->peer_closed(kServerRank)) break;  // daemon done
        transport->poll(0.1);
        continue;
      }
      std::optional<comm::Envelope> env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        // Damaged frame: ask for a downlink retransmit (the only thing
        // the daemon ever sends us besides NACKs).
        comm::NackMsg nack;
        nack.round = last_round + 1;
        nack.expected = down_type;
        transport->send(rank, kServerRank,
                        comm::Envelope{comm::MessageType::kNack, nack.encode()});
        continue;
      }
      if (env->type == comm::MessageType::kNack) {
        ByteReader reader(env->payload);
        const comm::NackMsg nack = comm::NackMsg::decode(reader);
        if (nack.expected == comm::MessageType::kMetadataReport &&
            !meta_env.payload.empty()) {
          transport->send(rank, kServerRank, meta_env);
        } else if (!report_env.payload.empty()) {
          transport->send(rank, kServerRank, report_env);
        }
        continue;
      }
      if (env->type != down_type) continue;  // stale / unexpected: drop

      ByteReader reader(env->payload);
      std::size_t round = 0;
      std::vector<float> weights;
      if (quant_on) {
        comm::QuantGlobalModelMsg msg = comm::QuantGlobalModelMsg::decode(reader);
        round = msg.round;
        weights = comm::dequantize(msg.model);
      } else {
        comm::GlobalModelMsg msg = comm::GlobalModelMsg::decode(reader);
        round = msg.round;
        weights = std::move(msg.weights);
      }
      if (round == last_round) {
        // Duplicate downlink (daemon-side retransmit raced our uplink):
        // resend the cached envelopes instead of training again, so the
        // client RNG stream and quant residual advance exactly once per
        // round no matter how lossy the exchange was.
        if (!meta_env.payload.empty()) {
          transport->send(rank, kServerRank, meta_env);
        }
        if (!report_env.payload.empty()) {
          transport->send(rank, kServerRank, report_env);
        }
        continue;
      }
      last_round = round;

      if (exit_before != 0 && round == exit_before) {
        ::_exit(0);  // vanish before any uplink → phase-① dropout
      }

      const double f_i = client.compute_inference_loss(*model, weights);
      comm::MetadataMsg meta;
      meta.round = round;
      meta.client_id = client.id();
      meta.num_samples = client.num_samples();
      meta.inference_loss = f_i;
      meta_env =
          comm::Envelope{comm::MessageType::kMetadataReport, meta.encode()};
      report_env = comm::Envelope{};  // stale report must not answer NACKs
      transport->send(rank, kServerRank, meta_env);

      if (exit_after_meta != 0 && round == exit_after_meta) {
        ::_exit(0);  // vanish mid-uplink → phase-② upload failure
      }

      if (config.server.rng_mode == RngMode::kDerived) {
        // The straggler coin is a pure function of (seed, round, client
        // id), so the worker reaches the same verdict the daemon does
        // without a control message: a straggled round ends after the
        // metadata uplink — no training, no report — exactly like the
        // in-process path. The report cache stays empty so a stray NACK
        // cannot resurrect a report the daemon never expected.
        if (derived_bernoulli(config.seed, round, client.id(),
                              RngStream::kStraggler,
                              config.server.straggler_drop_prob)) {
          continue;
        }
        // Per-participation reseed: local training draws from the same
        // derived stream regardless of this worker's downlink history.
        client.reseed_for_round(config.seed, round);
      }

      fl::ClientUpdate update = client.train_update(*model, weights, local, f_i);
      if (quant_on) {
        comm::QuantReportMsg up;
        up.round = round;
        up.client_id = client.id();
        up.num_samples = update.num_samples;
        up.inference_loss = update.inference_loss;
        up.delta = client.encode_quantized_update(
            update.weights, weights, config.server.quant,
            config.server.quant_keep);
        report_env = comm::Envelope{comm::MessageType::kQuantReport, up.encode()};
      } else {
        comm::ClientReportMsg up;
        up.round = round;
        up.client_id = client.id();
        up.num_samples = update.num_samples;
        up.inference_loss = update.inference_loss;
        up.weights = std::move(update.weights);
        report_env =
            comm::Envelope{comm::MessageType::kClientReport, up.encode()};
      }
      transport->send(rank, kServerRank, report_env);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fedcav_worker: %s\n", e.what());
    return 1;
  }
  return 0;
}
