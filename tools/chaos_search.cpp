// chaos_search: adaptive search over the fault/protocol parameter space.
//
//   chaos_search --budget 200 --seed 1              # learning sampler
//   chaos_search --sampler random --no-minimize     # uniform baseline
//   chaos_search --replay tests/chaos_seeds/x.plan  # re-run one plan
//
// Explores `budget` ChaosPlans with the chosen sampler, runs each
// through the invariant oracle, minimizes any failure, and prints the
// search report (axis concentration + minimized reproducers). A failing
// plan is written next to the report as chaos_failure_<n>.plan so it
// can be committed to tests/chaos_seeds/. Exit code: 0 when every plan
// passed, 1 otherwise.
#include <cstdio>
#include <iostream>

#include "src/chaos/search.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  CliParser cli("chaos_search",
                "search the fault/protocol space for invariant violations");
  cli.add_int("budget", 200, "number of plans to explore");
  cli.add_int("seed", 1, "search seed (sampler + per-trial fault seeds)");
  cli.add_string("sampler", "greedy", "sampler: greedy | random");
  cli.add_flag("minimize", "shrink failing plans to minimal reproducers");
  cli.add_flag("no-minimize", "keep failing plans as sampled");
  cli.add_string("replay", "", "replay one .plan file instead of searching");
  cli.add_flag("no-streaming-check", "skip the streaming-parity invariant");
  cli.add_flag("no-resume-check", "skip the checkpoint-resume invariant");
  cli.add_int("threads", 0, "thread-pool workers (0 = process default)");
  if (!cli.parse(argc, argv)) return 0;

  set_log_level(LogLevel::kWarn);

  chaos::OracleOptions oracle;
  oracle.check_streaming_parity = !cli.get_flag("no-streaming-check");
  oracle.check_resume = !cli.get_flag("no-resume-check");
  std::unique_ptr<ThreadPool> pool;
  if (cli.get_int("threads") > 0) {
    pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(cli.get_int("threads")));
    oracle.pool = pool.get();
  }

  const std::string replay = cli.get_string("replay");
  if (!replay.empty()) {
    const chaos::ChaosPlan plan = chaos::load_plan_file(replay);
    const chaos::OracleResult verdict = chaos::run_oracle(plan, oracle);
    if (verdict.passed) {
      std::cout << "PASS " << replay << ": " << plan.describe() << '\n';
      return 0;
    }
    std::cout << "FAIL " << replay << ": invariant=" << verdict.invariant
              << " detail=" << verdict.detail << '\n'
              << "  plan: " << plan.describe() << '\n';
    return 1;
  }

  chaos::SearchConfig config;
  config.budget = static_cast<std::size_t>(cli.get_int("budget"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string sampler = cli.get_string("sampler");
  if (sampler == "greedy") {
    config.learning = true;
  } else if (sampler == "random") {
    config.learning = false;
  } else {
    std::cerr << "unknown --sampler '" << sampler << "' (greedy | random)\n";
    return 2;
  }
  // --minimize is the default; --no-minimize wins when both are given.
  config.minimize = !cli.get_flag("no-minimize");
  config.oracle = oracle;

  const chaos::SearchReport report = chaos::run_search(config);
  std::cout << report.to_string();

  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "chaos_failure_%zu.plan", i);
    chaos::save_plan_file(report.failures[i].minimized, name);
    std::cout << "wrote " << name << '\n';
  }
  return report.ok() ? 0 : 1;
}
