// Shared flag set + SimulationConfig builder for the daemon/worker
// tools (DESIGN.md §14).
//
// The daemon, every worker, and the multi-process integration test must
// agree bit-exactly on the simulation — same corpus, same shards, same
// RNG fork order, same model init — or the federation trains different
// models on each side of every socket. Deriving all three from this one
// builder makes config drift a compile error instead of a flaky test.
#pragma once

#include <fstream>
#include <span>
#include <string>

#include "src/fl/simulation.hpp"
#include "src/tensor/serialize.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/error.hpp"

namespace fedcav::tools {

inline void add_federation_flags(CliParser& cli) {
  cli.add_string("socket", "", "Unix socket path of the federation");
  cli.add_string("tcp", "",
                 "host:port TCP address of the federation "
                 "(alternative to --socket; IPv6 hosts in brackets)");
  cli.add_string("auth-token", "",
                 "shared join secret (at most 32 bytes; empty = open join)");
  cli.add_int("rounds", 3, "communication rounds");
  cli.add_int("clients", 4, "federated clients (= worker ranks 1..N)");
  cli.add_string("dataset", "digits", "digits | fashion | cifar");
  cli.add_string("model", "mlp", "mlp | lenet5 | cnn9 | resnet");
  cli.add_string("strategy", "fedcav", "fedavg | fedprox | fedcav | fedcav-noclip");
  cli.add_int("seed", 2021, "simulation seed");
  cli.add_double("sample-ratio", 1.0, "fraction of clients sampled per round");
  cli.add_int("local-epochs", 2, "local SGD epochs per round");
  cli.add_int("batch-size", 10, "local mini-batch size");
  cli.add_double("lr", 0.05, "local learning rate");
  cli.add_int("train-per-class", 20, "training samples per class");
  cli.add_int("test-per-class", 10, "test samples per class");
  cli.add_int("quorum", 1, "min surviving updates to aggregate");
  cli.add_string("quant", "none", "wire codec: none | fp16 | int8");
  cli.add_double("quant-keep", 1.0, "top-k fraction of the uplink delta (0, 1]");
  cli.add_double("recv-timeout", 30.0,
                 "daemon: seconds to wait on a silent live worker");
  cli.add_double("straggler", 0.0,
                 "per-round probability a sampled client straggles out");
  cli.add_flag("derived-seeds",
               "per-round derived RNG streams (DESIGN.md §16): required for "
               "bit-identical sampled/straggler runs across process layouts");
}

inline fl::SimulationConfig federation_config(const CliParser& cli) {
  fl::SimulationConfig config;
  config.dataset = cli.get_string("dataset");
  config.model = cli.get_string("model");
  config.strategy = cli.get_string("strategy");
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.train_samples_per_class =
      static_cast<std::size_t>(cli.get_int("train-per-class"));
  config.test_samples_per_class =
      static_cast<std::size_t>(cli.get_int("test-per-class"));
  config.partition.num_clients = static_cast<std::size_t>(cli.get_int("clients"));
  config.server.sample_ratio = cli.get_double("sample-ratio");
  config.server.local.epochs = static_cast<std::size_t>(cli.get_int("local-epochs"));
  config.server.local.batch_size = static_cast<std::size_t>(cli.get_int("batch-size"));
  config.server.local.lr = static_cast<float>(cli.get_double("lr"));
  config.server.min_aggregate_clients =
      static_cast<std::size_t>(cli.get_int("quorum"));
  config.server.quant = comm::quant_mode_from_string(cli.get_string("quant"));
  config.server.quant_keep = cli.get_double("quant-keep");
  config.server.remote_recv_timeout_s = cli.get_double("recv-timeout");
  config.server.straggler_drop_prob = cli.get_double("straggler");
  config.server.rng_mode =
      cli.get_flag("derived-seeds") ? RngMode::kDerived : RngMode::kLegacyStream;
  config.server.seed = config.seed;
  return config;
}

/// Raw little-endian f32 dump of the final global weights; the
/// integration test compares these files byte-for-byte across backends.
inline void write_weights_file(const std::string& path,
                               const std::vector<float>& weights) {
  ByteBuffer buf;
  write_f32_span(buf, std::span<const float>(weights.data(), weights.size()));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FEDCAV_REQUIRE(out.good(), "write_weights_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  FEDCAV_REQUIRE(out.good(), "write_weights_file: write failed for " + path);
}

}  // namespace fedcav::tools
