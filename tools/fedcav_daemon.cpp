// Rank-0 daemon of a multi-process federation (DESIGN.md §14/§16).
//
// Binds a Unix domain socket (--socket PATH) or a TCP listener
// (--tcp HOST:PORT), waits for --clients workers to join via the
// HELLO/ACCEPT handshake (optionally gated by --auth-token), then runs
// the standard FedCav round loop with the stream transport installed:
// every downlink/uplink crosses a real process boundary. Exiting closes
// all connections, which is the workers' shutdown signal (EOF — there
// is no shutdown message type).
//
// Any handshake reject (version skew, bad token, rank collision) is
// fatal: the rejected worker exits instead of retrying, so the
// federation could never fill — the daemon logs the reason and exits
// nonzero immediately rather than burying it under an accept timeout.
//
//   ./fedcav_daemon --socket /tmp/fed.sock --clients 4 --rounds 3
//       [--csv history.csv] [--weights final.bin]
//   ./fedcav_daemon --tcp 127.0.0.1:9000 --auth-token s3cret --clients 4
#include <cstdio>
#include <exception>
#include <fstream>

#include "src/comm/socket_transport.hpp"
#include "src/comm/tcp_transport.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/logging.hpp"
#include "tools/federation_common.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("fedcav_daemon", "rank-0 server of a socket federation");
  tools::add_federation_flags(cli);
  cli.add_string("csv", "", "write round history CSV here (timings excluded)");
  cli.add_string("weights", "", "write final global weights (raw f32) here");
  cli.add_double("accept-timeout", 30.0, "seconds for all workers to join");
  if (!cli.parse(argc, argv)) return 0;

  const std::string socket_path = cli.get_string("socket");
  const std::string tcp_address = cli.get_string("tcp");
  if (socket_path.empty() == tcp_address.empty()) {
    std::fprintf(stderr,
                 "fedcav_daemon: exactly one of --socket or --tcp is required\n");
    return 2;
  }

  set_log_level(LogLevel::kWarn);
  try {
    const fl::SimulationConfig config = tools::federation_config(cli);
    fl::Simulation sim = fl::build_simulation(config);

    comm::StreamTransportConfig tcfg;
    tcfg.accept_timeout_s = cli.get_double("accept-timeout");
    tcfg.auth_token = cli.get_string("auth-token");
    // A rejected worker exits, so the configured worker count can never
    // be met: fail fast and loud instead of waiting out the timeout.
    tcfg.abort_on_reject = true;
    std::unique_ptr<comm::Transport> transport;
    if (!tcp_address.empty()) {
      transport = comm::TcpTransport::serve(
          tcp_address, config.partition.num_clients, tcfg);
    } else {
      transport = comm::SocketTransport::serve(
          socket_path, config.partition.num_clients, tcfg);
    }
    sim.server->set_transport(transport.get(), /*remote=*/true);

    const std::size_t rounds = static_cast<std::size_t>(cli.get_int("rounds"));
    sim.server->run(rounds);

    if (!cli.get_string("csv").empty()) {
      std::ofstream out(cli.get_string("csv"));
      FEDCAV_REQUIRE(out.good(),
                     "fedcav_daemon: cannot open " + cli.get_string("csv"));
      sim.server->history().write_csv(out, /*include_timings=*/false);
    }
    if (!cli.get_string("weights").empty()) {
      tools::write_weights_file(cli.get_string("weights"),
                                sim.server->global_weights());
    }

    const auto& records = sim.server->history().records();
    if (!records.empty()) {
      std::printf("daemon: %zu rounds, final accuracy %.4f, dropouts %zu, "
                  "upload failures %zu\n",
                  records.size(), records.back().test_accuracy,
                  records.back().dropouts, records.back().upload_failures);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fedcav_daemon: %s\n", e.what());
    return 1;
  }
  return 0;
}
