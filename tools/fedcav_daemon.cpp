// Rank-0 daemon of a multi-process federation (DESIGN.md §14).
//
// Binds a Unix domain socket, waits for --clients workers to join via
// the HELLO/ACCEPT handshake, then runs the standard FedCav round loop
// with the SocketTransport installed: every downlink/uplink crosses a
// real process boundary. Exiting closes all connections, which is the
// workers' shutdown signal (EOF — there is no shutdown message type).
//
//   ./fedcav_daemon --socket /tmp/fed.sock --clients 4 --rounds 3
//       [--csv history.csv] [--weights final.bin]
#include <cstdio>
#include <exception>
#include <fstream>

#include "src/comm/socket_transport.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/logging.hpp"
#include "tools/federation_common.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;

  CliParser cli("fedcav_daemon", "rank-0 server of a socket federation");
  tools::add_federation_flags(cli);
  cli.add_string("csv", "", "write round history CSV here (timings excluded)");
  cli.add_string("weights", "", "write final global weights (raw f32) here");
  cli.add_double("accept-timeout", 30.0, "seconds for all workers to join");
  if (!cli.parse(argc, argv)) return 0;

  const std::string socket_path = cli.get_string("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "fedcav_daemon: --socket is required\n");
    return 2;
  }

  set_log_level(LogLevel::kWarn);
  try {
    const fl::SimulationConfig config = tools::federation_config(cli);
    fl::Simulation sim = fl::build_simulation(config);

    comm::SocketTransportConfig tcfg;
    tcfg.accept_timeout_s = cli.get_double("accept-timeout");
    auto transport = comm::SocketTransport::serve(
        socket_path, config.partition.num_clients, tcfg);
    sim.server->set_transport(transport.get(), /*remote=*/true);

    const std::size_t rounds = static_cast<std::size_t>(cli.get_int("rounds"));
    sim.server->run(rounds);

    if (!cli.get_string("csv").empty()) {
      std::ofstream out(cli.get_string("csv"));
      FEDCAV_REQUIRE(out.good(),
                     "fedcav_daemon: cannot open " + cli.get_string("csv"));
      sim.server->history().write_csv(out, /*include_timings=*/false);
    }
    if (!cli.get_string("weights").empty()) {
      tools::write_weights_file(cli.get_string("weights"),
                                sim.server->global_weights());
    }

    const auto& records = sim.server->history().records();
    if (!records.empty()) {
      std::printf("daemon: %zu rounds, final accuracy %.4f, dropouts %zu, "
                  "upload failures %zu\n",
                  records.size(), records.back().test_accuracy,
                  records.back().dropouts, records.back().upload_failures);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fedcav_daemon: %s\n", e.what());
    return 1;
  }
  return 0;
}
